//! # hope-btree — B+tree substrates
//!
//! Two of the five search trees the HOPE paper evaluates on:
//!
//! * **plain B+tree** — modeled on the TLX (formerly STX) B+tree the paper
//!   uses: 256-byte nodes with a fan-out of [`FANOUT`] = 16, variable-length
//!   string keys stored *outside* the node behind reference pointers
//!   (here: `Box<[u8]>`, 16 bytes of slot + the key bytes on the heap);
//! * **Prefix B+tree** (Bayer & Unterauer '77) — adds *prefix truncation*
//!   (a node stores the common prefix of its keys once) and *suffix
//!   truncation* (a leaf split promotes the shortest separator that still
//!   partitions the halves).
//!
//! Both trees are generic over their value payload (`BPlusTree<V>`, any
//! [`hope::Value`]; defaults to `u64` record ids) and implement the
//! [`hope::OrderedIndex<V>`] contract serving layers program against.
//!
//! ```
//! use hope_btree::BPlusTree;
//!
//! let mut t = BPlusTree::prefix(); // or BPlusTree::plain()
//! t.insert(b"com.gmail@alice", 1);
//! t.insert(b"com.gmail@bob", 2);
//! assert_eq!(t.get(b"com.gmail@alice"), Some(1));
//! assert_eq!(t.scan(b"com.gmail@", 10), vec![1, 2]);
//!
//! // Any Clone + Send + Sync payload works, not just u64.
//! let mut docs: BPlusTree<String> = BPlusTree::plain();
//! docs.insert(b"k", "payload".to_string());
//! assert_eq!(docs.get_ref(b"k").map(String::as_str), Some("payload"));
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

/// Node fan-out: 256-byte nodes / (8-byte key pointer + 8-byte value or
/// child pointer) = 16 slots, matching the paper's TLX configuration.
pub const FANOUT: usize = 16;

const NO_NODE: u32 = u32::MAX;

/// A list of keys sharing an optional truncated prefix.
///
/// With `truncate = false` the prefix stays empty and keys are stored
/// whole (plain B+tree). With `truncate = true` the node's common prefix
/// is stored once and only suffixes per key (Prefix B+tree).
#[derive(Debug, Default)]
struct KeyList {
    prefix: Vec<u8>,
    suffixes: Vec<Box<[u8]>>,
}

impl KeyList {
    fn len(&self) -> usize {
        self.suffixes.len()
    }

    fn full_key(&self, i: usize) -> Vec<u8> {
        let mut k = self.prefix.clone();
        k.extend_from_slice(&self.suffixes[i]);
        k
    }

    /// Compare stored key `i` with `q` without materializing it.
    fn cmp(&self, i: usize, q: &[u8]) -> std::cmp::Ordering {
        use std::cmp::Ordering::*;
        let p = &self.prefix;
        let n = p.len().min(q.len());
        match p[..n].cmp(&q[..n]) {
            Equal => {
                if q.len() < p.len() {
                    return Greater; // stored starts with more than q has
                }
                self.suffixes[i].as_ref().cmp(&q[p.len()..])
            }
            other => other,
        }
    }

    /// First index whose key is `>= q`.
    fn lower_bound(&self, q: &[u8]) -> usize {
        self.suffixes
            .partition_point(|_| false)
            .max(self.partition(|i| self.cmp(i, q) == std::cmp::Ordering::Less))
    }

    /// First index whose key is `> q`.
    fn upper_bound(&self, q: &[u8]) -> usize {
        self.partition(|i| self.cmp(i, q) != std::cmp::Ordering::Greater)
    }

    fn partition(&self, pred: impl Fn(usize) -> bool) -> usize {
        let mut lo = 0;
        let mut hi = self.len();
        while lo < hi {
            let mid = (lo + hi) / 2;
            if pred(mid) {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    }

    /// Insert `key` at sorted position `i`, maintaining the truncated
    /// prefix invariant when enabled.
    fn insert_at(&mut self, i: usize, key: &[u8], truncate: bool) {
        if truncate {
            if self.suffixes.is_empty() {
                self.prefix = key.to_vec();
                self.suffixes.insert(0, Box::from(&[][..]));
                return;
            }
            let m = lcp(&self.prefix, key);
            if m < self.prefix.len() {
                // New key breaks the shared prefix: re-expand.
                let dropped = self.prefix[m..].to_vec();
                for s in &mut self.suffixes {
                    let mut v = dropped.clone();
                    v.extend_from_slice(s);
                    *s = v.into_boxed_slice();
                }
                self.prefix.truncate(m);
            }
        } else {
            debug_assert!(self.prefix.is_empty());
        }
        self.suffixes.insert(i, Box::from(&key[self.prefix.len()..]));
    }

    /// Split off the upper half at `at`, re-tightening both prefixes.
    fn split_off(&mut self, at: usize, truncate: bool) -> KeyList {
        let upper = self.suffixes.split_off(at);
        let mut right = KeyList { prefix: self.prefix.clone(), suffixes: upper };
        if truncate {
            self.retighten();
            right.retighten();
        }
        right
    }

    /// Extend the prefix by the common prefix of all suffixes.
    fn retighten(&mut self) {
        if self.suffixes.is_empty() {
            return;
        }
        let mut m = self.suffixes[0].len();
        for s in &self.suffixes[1..] {
            m = m.min(lcp(&self.suffixes[0], s));
            if m == 0 {
                return;
            }
        }
        if m > 0 {
            self.prefix.extend_from_slice(&self.suffixes[0][..m]);
            for s in &mut self.suffixes {
                *s = Box::from(&s[m..]);
            }
        }
    }

    /// Heap bytes: key-slot pointers (16 B each, the TLX "reference
    /// pointer") plus out-of-node key bytes plus the shared prefix.
    fn memory_bytes(&self) -> usize {
        self.prefix.len()
            + self
                .suffixes
                .iter()
                .map(|s| std::mem::size_of::<Box<[u8]>>() + s.len())
                .sum::<usize>()
    }
}

#[derive(Debug)]
struct LeafNode<V> {
    keys: KeyList,
    values: Vec<V>,
    next: u32,
}

#[derive(Debug)]
struct InnerNode {
    /// Separators; child `i` holds keys `< seps[i]`, child `i+1` keys
    /// `>= seps[i]`.
    seps: KeyList,
    children: Vec<u32>,
}

#[derive(Debug)]
enum Node<V> {
    Leaf(LeafNode<V>),
    Inner(InnerNode),
}

/// A B+tree over byte-string keys and `V` values (default: `u64` ids).
#[derive(Debug)]
pub struct BPlusTree<V = u64> {
    nodes: Vec<Node<V>>,
    root: u32,
    len: usize,
    prefix_truncation: bool,
    suffix_truncation: bool,
}

impl<V> BPlusTree<V> {
    /// Plain TLX-style B+tree (full keys behind reference pointers).
    pub fn plain() -> Self {
        Self::with_modes(false, false)
    }

    /// Prefix B+tree: prefix truncation in nodes + suffix-truncated
    /// separators on splits.
    pub fn prefix() -> Self {
        Self::with_modes(true, true)
    }

    fn with_modes(prefix_truncation: bool, suffix_truncation: bool) -> Self {
        let leaf =
            Node::Leaf(LeafNode { keys: KeyList::default(), values: Vec::new(), next: NO_NODE });
        BPlusTree { nodes: vec![leaf], root: 0, len: 0, prefix_truncation, suffix_truncation }
    }

    /// Point lookup, borrowing the stored value.
    pub fn get_ref(&self, key: &[u8]) -> Option<&V> {
        let mut at = self.root;
        loop {
            match &self.nodes[at as usize] {
                Node::Inner(inner) => {
                    let i = inner.seps.upper_bound(key);
                    at = inner.children[i];
                }
                Node::Leaf(leaf) => {
                    let i = leaf.keys.lower_bound(key);
                    return (i < leaf.keys.len()
                        && leaf.keys.cmp(i, key) == std::cmp::Ordering::Equal)
                        .then(|| &leaf.values[i]);
                }
            }
        }
    }

    /// Number of stored keys.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no keys are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Tree height in levels (1 = a single leaf).
    pub fn height(&self) -> usize {
        let mut h = 1;
        let mut at = self.root;
        while let Node::Inner(inner) = &self.nodes[at as usize] {
            at = inner.children[0];
            h += 1;
        }
        h
    }

    /// Total memory: node structures + key slots + out-of-node key bytes
    /// + in-node value slots.
    pub fn memory_bytes(&self) -> usize {
        self.nodes
            .iter()
            .map(|n| match n {
                Node::Leaf(l) => {
                    std::mem::size_of::<Node<V>>()
                        + l.keys.memory_bytes()
                        + l.values.len() * std::mem::size_of::<V>()
                }
                Node::Inner(i) => {
                    std::mem::size_of::<Node<V>>() + i.seps.memory_bytes() + i.children.len() * 4
                }
            })
            .sum()
    }

    /// Insert or update; returns the previous value if present.
    pub fn insert(&mut self, key: &[u8], value: V) -> Option<V> {
        let root = self.root;
        let (split, old) = self.insert_rec(root, key, value);
        if let Some((sep, right)) = split {
            let mut seps = KeyList::default();
            seps.insert_at(0, &sep, self.prefix_truncation);
            let inner = InnerNode { seps, children: vec![root, right] };
            self.nodes.push(Node::Inner(inner));
            self.root = (self.nodes.len() - 1) as u32;
        }
        if old.is_none() {
            self.len += 1;
        }
        old
    }

    /// Returns (optional split (separator, new right node), old value).
    fn insert_rec(&mut self, at: u32, key: &[u8], value: V) -> (Option<(Vec<u8>, u32)>, Option<V>) {
        let (sep_right, old) = match &mut self.nodes[at as usize] {
            Node::Leaf(leaf) => {
                let i = leaf.keys.lower_bound(key);
                if i < leaf.keys.len() && leaf.keys.cmp(i, key) == std::cmp::Ordering::Equal {
                    let old = std::mem::replace(&mut leaf.values[i], value);
                    return (None, Some(old));
                }
                let truncate = self.prefix_truncation;
                leaf.keys.insert_at(i, key, truncate);
                leaf.values.insert(i, value);
                if leaf.keys.len() <= FANOUT {
                    return (None, None);
                }
                // Split the leaf.
                let mid = leaf.keys.len() / 2;
                let left_max = leaf.keys.full_key(mid - 1);
                let right_min = leaf.keys.full_key(mid);
                let sep = if self.suffix_truncation {
                    shortest_separator(&left_max, &right_min)
                } else {
                    right_min.clone()
                };
                let rk = leaf.keys.split_off(mid, truncate);
                let rv = leaf.values.split_off(mid);
                let new_leaf = Node::Leaf(LeafNode { keys: rk, values: rv, next: leaf.next });
                if truncate {
                    leaf.keys.retighten();
                }
                self.nodes.push(new_leaf);
                let right = (self.nodes.len() - 1) as u32;
                if let Node::Leaf(l) = &mut self.nodes[at as usize] {
                    l.next = right;
                }
                (Some((sep, right)), None)
            }
            Node::Inner(inner) => {
                let i = inner.seps.upper_bound(key);
                let child = inner.children[i];
                let (split, old) = self.insert_rec(child, key, value);
                let Some((sep, right)) = split else {
                    return (None, old);
                };
                let truncate = self.prefix_truncation;
                let Node::Inner(inner) = &mut self.nodes[at as usize] else {
                    unreachable!("node kind changed")
                };
                let pos = inner.seps.lower_bound(&sep);
                inner.seps.insert_at(pos, &sep, truncate);
                inner.children.insert(pos + 1, right);
                if inner.seps.len() < FANOUT {
                    return (None, old);
                }
                // Split the inner node; the middle separator moves up.
                let mid = inner.seps.len() / 2;
                let up = inner.seps.full_key(mid);
                let mut rk = inner.seps.split_off(mid, truncate);
                // Drop the promoted separator from the right half.
                let promoted = rk.suffixes.remove(0);
                debug_assert_eq!(
                    {
                        let mut k = rk.prefix.clone();
                        k.extend_from_slice(&promoted);
                        k
                    },
                    up
                );
                if truncate {
                    rk.retighten();
                    inner.seps.retighten();
                }
                let rc = inner.children.split_off(mid + 1);
                self.nodes.push(Node::Inner(InnerNode { seps: rk, children: rc }));
                let right = (self.nodes.len() - 1) as u32;
                (Some((up, right)), old)
            }
        };
        (sep_right, old)
    }
}

impl<V: Clone> BPlusTree<V> {
    /// Point lookup, cloning the stored value (a copy for `u64` ids). Use
    /// [`BPlusTree::get_ref`] to borrow instead.
    pub fn get(&self, key: &[u8]) -> Option<V> {
        self.get_ref(key).cloned()
    }

    /// Range scan: values of up to `count` keys `>= start`, in key order.
    pub fn scan(&self, start: &[u8], count: usize) -> Vec<V> {
        let mut out = Vec::with_capacity(count.min(64));
        self.scan_bounded(start, None, count, &mut out);
        out
    }

    /// Allocation-free [`BPlusTree::scan`]: append up to `count` values to
    /// a caller-owned buffer (scan loops reuse one across probes).
    pub fn scan_into(&self, start: &[u8], count: usize, out: &mut Vec<V>) {
        self.scan_bounded(start, None, count, out);
    }

    /// Bounded range scan: values of up to `limit` keys in `low..=high`
    /// (inclusive on both ends), in key order.
    pub fn range(&self, low: &[u8], high: &[u8], limit: usize) -> Vec<V> {
        let mut out = Vec::with_capacity(limit.min(64));
        self.range_into(low, high, limit, &mut out);
        out
    }

    /// Allocation-free [`BPlusTree::range`]: append up to `limit` values
    /// to a caller-owned buffer (scan loops reuse one across probes).
    pub fn range_into(&self, low: &[u8], high: &[u8], limit: usize, out: &mut Vec<V>) {
        if low > high {
            return;
        }
        self.scan_bounded(low, Some(high), limit, out);
    }

    /// Leaf-chain walk from the first key `>= start`, appending to `out`
    /// until `count` values were emitted or (when set) the first key
    /// `> high` is reached.
    fn scan_bounded(&self, start: &[u8], high: Option<&[u8]>, count: usize, out: &mut Vec<V>) {
        let stop = out.len().saturating_add(count);
        let mut at = self.root;
        while let Node::Inner(inner) = &self.nodes[at as usize] {
            let i = inner.seps.upper_bound(start);
            at = inner.children[i];
        }
        let mut pos = match &self.nodes[at as usize] {
            Node::Leaf(leaf) => leaf.keys.lower_bound(start),
            Node::Inner(_) => unreachable!(),
        };
        while let Node::Leaf(leaf) = &self.nodes[at as usize] {
            while pos < leaf.keys.len() && out.len() < stop {
                if let Some(h) = high {
                    if leaf.keys.cmp(pos, h) == std::cmp::Ordering::Greater {
                        return;
                    }
                }
                out.push(leaf.values[pos].clone());
                pos += 1;
            }
            if out.len() >= stop || leaf.next == NO_NODE {
                break;
            }
            at = leaf.next;
            pos = 0;
        }
    }
}

/// B+trees satisfy the generic ordered-index contract HOPE serving layers
/// program against, for any value payload.
impl<V: hope::Value> hope::OrderedIndex<V> for BPlusTree<V> {
    fn get(&self, key: &[u8]) -> Option<&V> {
        BPlusTree::get_ref(self, key)
    }

    fn insert(&mut self, key: &[u8], value: V) -> Option<V> {
        BPlusTree::insert(self, key, value)
    }

    fn scan_into(&self, start: &[u8], count: usize, out: &mut Vec<V>) {
        BPlusTree::scan_into(self, start, count, out)
    }

    fn range_into(&self, low: &[u8], high: &[u8], limit: usize, out: &mut Vec<V>) {
        BPlusTree::range_into(self, low, high, limit, out)
    }

    fn len(&self) -> usize {
        BPlusTree::len(self)
    }

    fn memory_bytes(&self) -> usize {
        BPlusTree::memory_bytes(self)
    }
}

/// Shortest separator `s` with `left < s <= right` (suffix truncation):
/// one byte past the common prefix of the split point's neighbours.
fn shortest_separator(left: &[u8], right: &[u8]) -> Vec<u8> {
    debug_assert!(left < right);
    let m = lcp(left, right);
    // `right[..m+1]` is > left (differs at m, or left ends at m) and a
    // prefix of right, hence <= right.
    right[..(m + 1).min(right.len())].to_vec()
}

#[inline]
fn lcp(a: &[u8], b: &[u8]) -> usize {
    a.iter().zip(b).take_while(|(x, y)| x == y).count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::BTreeMap;

    fn both() -> [BPlusTree; 2] {
        [BPlusTree::plain(), BPlusTree::prefix()]
    }

    #[test]
    fn insert_get_small() {
        for mut t in both() {
            assert_eq!(t.insert(b"banana", 2), None);
            assert_eq!(t.insert(b"apple", 1), None);
            assert_eq!(t.insert(b"cherry", 3), None);
            assert_eq!(t.get(b"apple"), Some(1));
            assert_eq!(t.get(b"banana"), Some(2));
            assert_eq!(t.get(b"cherry"), Some(3));
            assert_eq!(t.get(b"durian"), None);
            assert_eq!(t.len(), 3);
        }
    }

    #[test]
    fn update_in_place() {
        for mut t in both() {
            t.insert(b"k", 1);
            assert_eq!(t.insert(b"k", 9), Some(1));
            assert_eq!(t.len(), 1);
            assert_eq!(t.get(b"k"), Some(9));
        }
    }

    #[test]
    fn splits_preserve_order() {
        for mut t in both() {
            let n = 500u64;
            for i in 0..n {
                t.insert(format!("key{:06}", i * 7 % n).as_bytes(), i);
            }
            assert_eq!(t.len() as u64, n);
            for i in 0..n {
                let k = format!("key{:06}", i * 7 % n);
                assert_eq!(t.get(k.as_bytes()), Some(i), "{k}");
            }
            assert!(t.height() > 1);
        }
    }

    #[test]
    fn scan_across_leaves() {
        for mut t in both() {
            for i in 0..100u64 {
                t.insert(format!("user{i:04}").as_bytes(), i);
            }
            let got = t.scan(b"user0050", 10);
            assert_eq!(got, (50..60).collect::<Vec<u64>>());
            let got = t.scan(b"", 5);
            assert_eq!(got, (0..5).collect::<Vec<u64>>());
            assert!(t.scan(b"zzz", 5).is_empty());
        }
    }

    #[test]
    fn prefix_variant_uses_less_memory_on_shared_prefixes() {
        let mut plain = BPlusTree::plain();
        let mut pfx = BPlusTree::prefix();
        for i in 0..2000u64 {
            let k = format!("http://www.example.com/very/long/shared/path/item{i:06}");
            plain.insert(k.as_bytes(), i);
            pfx.insert(k.as_bytes(), i);
        }
        assert!(
            pfx.memory_bytes() < plain.memory_bytes(),
            "prefix {} vs plain {}",
            pfx.memory_bytes(),
            plain.memory_bytes()
        );
        for i in (0..2000u64).step_by(97) {
            let k = format!("http://www.example.com/very/long/shared/path/item{i:06}");
            assert_eq!(pfx.get(k.as_bytes()), Some(i));
        }
    }

    #[test]
    fn shortest_separator_properties() {
        let cases: [(&[u8], &[u8]); 4] =
            [(b"abcdef", b"abd"), (b"a", b"b"), (b"abc", b"abcd"), (b"", b"x")];
        for (l, r) in cases {
            let s = shortest_separator(l, r);
            assert!(l < s.as_slice(), "{l:?} {r:?} -> {s:?}");
            assert!(s.as_slice() <= r, "{l:?} {r:?} -> {s:?}");
        }
    }

    #[test]
    fn empty_key_supported() {
        for mut t in both() {
            t.insert(b"", 42);
            t.insert(b"a", 1);
            assert_eq!(t.get(b""), Some(42));
            assert_eq!(t.scan(b"", 2), vec![42, 1]);
        }
    }

    #[test]
    fn bounded_range_is_inclusive_and_ordered() {
        for mut t in both() {
            for i in 0..200u64 {
                t.insert(format!("user{i:04}").as_bytes(), i);
            }
            assert_eq!(t.range(b"user0010", b"user0013", 100), vec![10, 11, 12, 13]);
            // Limit truncates from the front.
            assert_eq!(t.range(b"user0010", b"user0100", 3), vec![10, 11, 12]);
            // Bounds need not be stored keys.
            assert_eq!(t.range(b"user0010x", b"user0012x", 100), vec![11, 12]);
            // Inverted and empty ranges.
            assert!(t.range(b"user0013", b"user0010", 100).is_empty());
            assert!(t.range(b"zzz", b"zzzz", 100).is_empty());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        #[test]
        fn behaves_like_btreemap(
            ops in proptest::collection::vec(
                (proptest::collection::vec(any::<u8>(), 0..20), any::<u64>()), 1..300),
            probes in proptest::collection::vec(
                proptest::collection::vec(any::<u8>(), 0..20), 0..40),
            start in proptest::collection::vec(any::<u8>(), 0..20),
        ) {
            for mut t in both() {
                let mut model = BTreeMap::new();
                for (k, v) in &ops {
                    prop_assert_eq!(t.insert(k, *v), model.insert(k.clone(), *v));
                }
                prop_assert_eq!(t.len(), model.len());
                for (k, v) in &model {
                    prop_assert_eq!(t.get(k), Some(*v));
                }
                for p in &probes {
                    prop_assert_eq!(t.get(p), model.get(p).copied());
                }
                let want: Vec<u64> = model.range(start.clone()..).take(25).map(|(_, v)| *v).collect();
                prop_assert_eq!(t.scan(&start, 25), want);
                let mut hi = start.clone();
                hi.extend_from_slice(b"\xff\xff");
                let want: Vec<u64> =
                    model.range(start.clone()..=hi.clone()).take(25).map(|(_, v)| *v).collect();
                prop_assert_eq!(t.range(&start, &hi, 25), want);
            }
        }
    }
}
