//! Integration + property suite for the telemetry event ring
//! ([`hope_store::telemetry::EventLog`]) and the store's event emission.
//!
//! The ring is a safe-code seqlock: per-slot sequence atomics guard the
//! payload words, writers serialize per slot only when lapped, readers
//! skip slots mid-rewrite instead of returning torn events. These tests
//! attack exactly the properties that protocol claims:
//!
//! * **no tearing** — concurrent writers stamp every payload word of an
//!   event with the same writer-unique value; any snapshot, taken while
//!   the writers hammer the ring, must only ever contain internally
//!   consistent events;
//! * **oldest-first overflow** — whatever interleaving lapped the ring,
//!   the resident events are the newest `capacity` tickets, `dropped()`
//!   is exact, and `seq` is strictly increasing;
//! * **monotone epochs under live swaps** — snapshots taken *during*
//!   repeated `force_rebuild` calls see per-shard `swap_end` chains that
//!   step the epoch strictly upward with no gaps in the chain.

use std::sync::Arc;

use hope_store::serving::FaultPlan;
use hope_store::telemetry::{Event, EventKind, EventLog};
use hope_store::{HopeStore, StoreConfig, StoreError};
use proptest::prelude::*;

/// An event whose every payload field is derived from `(writer, i)` — a
/// torn mix of two writers' stores is detectable from any field pair.
fn stamped(writer: u32, i: u64) -> Event {
    let v = (u64::from(writer) << 32) | i;
    Event {
        kind: EventKind::SwapEnd,
        shard: writer,
        prev_epoch: v,
        epoch: v.wrapping_add(1),
        keys: v.wrapping_mul(3),
        replayed: v ^ 0xDEAD_BEEF,
        bytes: v.rotate_left(17),
        duration_ns: v.wrapping_add(42),
        ..Event::default()
    }
}

/// Check an event is exactly some writer's `stamped(w, i)` — not a blend.
fn is_untorn(ev: &Event) -> bool {
    let v = ev.prev_epoch;
    *ev == Event {
        seq: ev.seq,
        shard: (v >> 32) as u32,
        ..stamped((v >> 32) as u32, v & 0xFFFF_FFFF)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Concurrent writers + a concurrent reader: every event in every
    /// snapshot is internally consistent (all fields from one `record`
    /// call), and the final drain holds the newest `capacity` tickets in
    /// strictly increasing `seq` order with an exact drop count.
    #[test]
    fn concurrent_writers_never_tear_an_event(
        capacity in 1usize..32,
        writers in 2u32..5,
        per_writer in 1u64..64,
    ) {
        let log = Arc::new(EventLog::new(capacity));
        std::thread::scope(|s| {
            for w in 0..writers {
                let log = Arc::clone(&log);
                s.spawn(move || {
                    for i in 0..per_writer {
                        log.record(stamped(w, i));
                    }
                });
            }
            // Snapshot while the writers are racing: torn reads would
            // show up here, well before the quiescent checks below.
            // (Plain asserts: proptest reports panics as failures, and
            // `?` is unavailable inside a thread scope.)
            let racing = log.snapshot();
            assert!(racing.iter().all(is_untorn), "torn event in a racing snapshot");
            assert!(racing.windows(2).all(|p| p[0].seq < p[1].seq));
        });

        let total = u64::from(writers) * per_writer;
        prop_assert_eq!(log.recorded(), total);
        prop_assert_eq!(log.dropped(), total.saturating_sub(capacity as u64));
        let events = log.snapshot();
        prop_assert_eq!(events.len() as u64, total.min(capacity as u64));
        prop_assert!(events.iter().all(is_untorn), "torn event after quiescence");
        // Quiescent: the resident window is exactly the newest tickets.
        let lo = total.saturating_sub(capacity as u64);
        let seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
        prop_assert_eq!(seqs, (lo..total).collect::<Vec<u64>>());
    }

    /// Single-threaded overflow with arbitrary capacity/volume: the ring
    /// retains the newest `capacity` events verbatim, oldest dropped.
    #[test]
    fn overflow_drops_oldest_first(capacity in 1usize..16, n in 0u64..64) {
        let log = EventLog::new(capacity);
        for i in 0..n {
            log.record(stamped(0, i));
        }
        prop_assert_eq!(log.dropped(), n.saturating_sub(capacity as u64));
        let events = log.snapshot();
        let lo = n.saturating_sub(capacity as u64);
        prop_assert_eq!(events.len() as u64, n - lo);
        for (ev, i) in events.iter().zip(lo..n) {
            prop_assert_eq!(ev.seq, i);
            prop_assert_eq!(ev, &Event { seq: i, ..stamped(0, i) });
        }
    }

    /// Snapshots taken *during* live rebuilds: per shard, the `swap_end`
    /// events form a chain — each swap's `prev_epoch` is the previous
    /// swap's `epoch`, strictly increasing — in every mid-swap snapshot,
    /// not just the final one.
    #[test]
    fn snapshot_during_swaps_sees_monotone_epochs(rebuilds in 1usize..6) {
        let pairs = (0..400u64).map(|i| (format!("com.mail@user{i:04}").into_bytes(), i));
        let store = Arc::new(
            HopeStore::build(StoreConfig { shards: 2, ..StoreConfig::default() }, pairs)
                .expect("store build"),
        );
        let tel = store.telemetry_handle();
        std::thread::scope(|s| {
            let swapper = {
                let store = Arc::clone(&store);
                s.spawn(move || {
                    for r in 0..rebuilds {
                        store.force_rebuild(r % 2).expect("forced rebuild");
                    }
                })
            };
            while !swapper.is_finished() {
                assert!(epochs_chain(&tel.events().snapshot()), "mid-swap snapshot broke the chain");
            }
        });
        let final_events = tel.events().snapshot();
        prop_assert!(epochs_chain(&final_events));
        let swap_ends = final_events.iter().filter(|e| e.kind == EventKind::SwapEnd).count();
        prop_assert_eq!(swap_ends, rebuilds);
        prop_assert_eq!(tel.events().dropped(), 0);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Overflow under an injected-failure burst, synthetically: an
    /// interleaved stream of per-shard maintenance episodes — `SwapBegin`
    /// followed by either `RebuildFailed` (epoch unchanged) or `SwapEnd`
    /// (epoch stepped) — pushed through a small ring. However the burst
    /// laps the ring: the drop count is exact, eviction is oldest-first
    /// (the resident window is precisely the newest tickets), and the
    /// per-shard epoch chains visible through the window stay monotone.
    #[test]
    fn fault_burst_overflow_keeps_drops_exact_and_chains_monotone(
        capacity in 1usize..12,
        episodes in proptest::collection::vec((0u32..3, any::<bool>()), 1..48),
    ) {
        let log = EventLog::new(capacity);
        let mut epochs = [1u64, 2, 3]; // per-shard current epoch
        let mut next_epoch = 4u64;
        let mut expected: Vec<Event> = Vec::new();
        let record = |log: &EventLog, expected: &mut Vec<Event>, ev: Event| {
            log.record(ev);
            expected.push(Event { seq: expected.len() as u64, ..ev });
        };
        for &(shard, fails) in &episodes {
            let prev = epochs[shard as usize];
            record(&log, &mut expected, Event {
                kind: EventKind::SwapBegin,
                shard,
                prev_epoch: prev,
                epoch: prev,
                ..Event::default()
            });
            if fails {
                record(&log, &mut expected, Event {
                    kind: EventKind::RebuildFailed,
                    shard,
                    prev_epoch: prev,
                    epoch: prev,
                    ..Event::default()
                });
            } else {
                epochs[shard as usize] = next_epoch;
                record(&log, &mut expected, Event {
                    kind: EventKind::SwapEnd,
                    shard,
                    prev_epoch: prev,
                    epoch: next_epoch,
                    ..Event::default()
                });
                next_epoch += 1;
            }
        }

        let total = expected.len() as u64;
        prop_assert_eq!(log.recorded(), total);
        prop_assert_eq!(log.dropped(), total.saturating_sub(capacity as u64));
        let resident = log.snapshot();
        let lo = total.saturating_sub(capacity as u64) as usize;
        // Oldest-first eviction: the survivors are exactly the newest
        // `capacity` events, contents and tickets verbatim.
        prop_assert_eq!(&resident[..], &expected[lo..]);
        // And whatever prefix the burst evicted, the chains that remain
        // visible are still monotone.
        prop_assert!(epochs_chain(&resident), "drops broke a visible epoch chain");
    }
}

/// Overflow under an injected-failure burst, through the real store: a
/// tiny ring (`event_capacity: 8`), `rebuild_fail_every: 2`, and 20
/// alternating forced rebuilds. Every count is exact by construction:
/// 2 `GenerationBuilt` + 20 `SwapBegin` + 10 `RebuildFailed` (attempts
/// 0,2,4,6,8 per shard) + 10 `SwapEnd` + 10 `RebuildIncremental` (an
/// untouched shard retrains a byte-identical dictionary, so every heal
/// takes the splice path) = 52 recorded, so 44 drop and the resident
/// window is the tail of the last three episodes.
#[test]
fn store_fault_burst_overflows_ring_with_exact_drop_count() {
    let pairs = (0..400u64).map(|i| (format!("com.mail@user{i:04}").into_bytes(), i));
    let cfg = StoreConfig {
        shards: 2,
        event_capacity: 8,
        min_observed_bytes: u64::MAX, // explicit rebuilds only
        ..StoreConfig::default()
    };
    let store = HopeStore::build(cfg, pairs).expect("store build");
    store.inject_faults(FaultPlan { rebuild_fail_every: 2, ..FaultPlan::default() });

    let mut injected = 0u64;
    for r in 0..20usize {
        let shard = r % 2;
        // Per-shard attempts alternate fail (even) / heal (odd).
        match store.force_rebuild(shard) {
            Err(StoreError::FaultInjected { shard: s, attempt }) => {
                assert_eq!((s, attempt % 2), (shard, 0), "wrong failure at rebuild {r}");
                injected += 1;
            }
            Ok(_) => assert_eq!((r / 2) % 2, 1, "rebuild {r} should have failed"),
            Err(e) => panic!("real error at rebuild {r}: {e}"),
        }
    }
    assert_eq!(injected, 10);

    let tel = store.telemetry();
    assert_eq!(tel.counter("store.faults.injected_rebuild_failures"), Some(10));
    for s in 0..2 {
        assert_eq!(tel.counter(&format!("store.shard.{s}.rebuild_errors")), Some(5));
    }
    // 52 recorded through a ring of 8: exactly 44 dropped, oldest first.
    assert_eq!(tel.dropped_events, 44);
    assert_eq!(tel.events.len(), 8);
    let seqs: Vec<u64> = tel.events.iter().map(|e| e.seq).collect();
    assert_eq!(seqs, (44..52).collect::<Vec<u64>>());
    // The resident window straddles the last three episodes: the tail of
    // a failure, then two heals (each begin + end + path attribution).
    let kinds: Vec<EventKind> = tel.events.iter().map(|e| e.kind).collect();
    assert_eq!(
        kinds,
        vec![
            EventKind::SwapBegin,
            EventKind::RebuildFailed,
            EventKind::SwapBegin,
            EventKind::SwapEnd,
            EventKind::RebuildIncremental,
            EventKind::SwapBegin,
            EventKind::SwapEnd,
            EventKind::RebuildIncremental,
        ]
    );
    // Failed rebuilds install nothing; healed ones step the epoch. The
    // chains that survive the drops are still monotone.
    for e in &tel.events {
        match e.kind {
            EventKind::RebuildFailed | EventKind::SwapBegin => assert_eq!(e.epoch, e.prev_epoch),
            EventKind::SwapEnd | EventKind::RebuildIncremental | EventKind::RebuildFull => {
                assert!(e.epoch > e.prev_epoch)
            }
            _ => {}
        }
    }
    assert!(epochs_chain(&tel.events));
}

/// Per-shard `swap_end` chain check: epochs strictly increase and each
/// link's `prev_epoch` matches its predecessor's `epoch`.
fn epochs_chain(events: &[Event]) -> bool {
    let mut last: std::collections::BTreeMap<u32, u64> = std::collections::BTreeMap::new();
    events.iter().filter(|e| e.kind == EventKind::SwapEnd).all(|e| {
        let chained = match last.insert(e.shard, e.epoch) {
            Some(prev) => e.prev_epoch == prev,
            None => true,
        };
        chained && e.epoch > e.prev_epoch
    }) && events.windows(2).all(|p| p[0].seq < p[1].seq)
}

/// The snapshot a `ServingReport` embeds and a direct `telemetry()` call
/// agree on the event history (deterministic fields).
#[test]
fn store_snapshot_and_live_log_agree() {
    let pairs = (0..300u64).map(|i| (format!("com.mail@user{i:04}").into_bytes(), i));
    let store = HopeStore::build(StoreConfig::default(), pairs).expect("store build");
    store.force_rebuild(0).expect("forced rebuild");
    let snap = store.telemetry();
    let live = store.telemetry_handle().events().snapshot();
    assert_eq!(snap.events, live);
    assert_eq!(snap.events_of(EventKind::SwapEnd).count(), 1);
    assert_eq!(snap.dropped_events, 0);
}
