//! Integration + property suite for the telemetry event ring
//! ([`hope_store::telemetry::EventLog`]) and the store's event emission.
//!
//! The ring is a safe-code seqlock: per-slot sequence atomics guard the
//! payload words, writers serialize per slot only when lapped, readers
//! skip slots mid-rewrite instead of returning torn events. These tests
//! attack exactly the properties that protocol claims:
//!
//! * **no tearing** — concurrent writers stamp every payload word of an
//!   event with the same writer-unique value; any snapshot, taken while
//!   the writers hammer the ring, must only ever contain internally
//!   consistent events;
//! * **oldest-first overflow** — whatever interleaving lapped the ring,
//!   the resident events are the newest `capacity` tickets, `dropped()`
//!   is exact, and `seq` is strictly increasing;
//! * **monotone epochs under live swaps** — snapshots taken *during*
//!   repeated `force_rebuild` calls see per-shard `swap_end` chains that
//!   step the epoch strictly upward with no gaps in the chain.

use std::sync::Arc;

use hope_store::telemetry::{Event, EventKind, EventLog};
use hope_store::{HopeStore, StoreConfig};
use proptest::prelude::*;

/// An event whose every payload field is derived from `(writer, i)` — a
/// torn mix of two writers' stores is detectable from any field pair.
fn stamped(writer: u32, i: u64) -> Event {
    let v = (u64::from(writer) << 32) | i;
    Event {
        kind: EventKind::SwapEnd,
        shard: writer,
        prev_epoch: v,
        epoch: v.wrapping_add(1),
        keys: v.wrapping_mul(3),
        replayed: v ^ 0xDEAD_BEEF,
        bytes: v.rotate_left(17),
        duration_ns: v.wrapping_add(42),
        ..Event::default()
    }
}

/// Check an event is exactly some writer's `stamped(w, i)` — not a blend.
fn is_untorn(ev: &Event) -> bool {
    let v = ev.prev_epoch;
    *ev == Event {
        seq: ev.seq,
        shard: (v >> 32) as u32,
        ..stamped((v >> 32) as u32, v & 0xFFFF_FFFF)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Concurrent writers + a concurrent reader: every event in every
    /// snapshot is internally consistent (all fields from one `record`
    /// call), and the final drain holds the newest `capacity` tickets in
    /// strictly increasing `seq` order with an exact drop count.
    #[test]
    fn concurrent_writers_never_tear_an_event(
        capacity in 1usize..32,
        writers in 2u32..5,
        per_writer in 1u64..64,
    ) {
        let log = Arc::new(EventLog::new(capacity));
        std::thread::scope(|s| {
            for w in 0..writers {
                let log = Arc::clone(&log);
                s.spawn(move || {
                    for i in 0..per_writer {
                        log.record(stamped(w, i));
                    }
                });
            }
            // Snapshot while the writers are racing: torn reads would
            // show up here, well before the quiescent checks below.
            // (Plain asserts: proptest reports panics as failures, and
            // `?` is unavailable inside a thread scope.)
            let racing = log.snapshot();
            assert!(racing.iter().all(is_untorn), "torn event in a racing snapshot");
            assert!(racing.windows(2).all(|p| p[0].seq < p[1].seq));
        });

        let total = u64::from(writers) * per_writer;
        prop_assert_eq!(log.recorded(), total);
        prop_assert_eq!(log.dropped(), total.saturating_sub(capacity as u64));
        let events = log.snapshot();
        prop_assert_eq!(events.len() as u64, total.min(capacity as u64));
        prop_assert!(events.iter().all(is_untorn), "torn event after quiescence");
        // Quiescent: the resident window is exactly the newest tickets.
        let lo = total.saturating_sub(capacity as u64);
        let seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
        prop_assert_eq!(seqs, (lo..total).collect::<Vec<u64>>());
    }

    /// Single-threaded overflow with arbitrary capacity/volume: the ring
    /// retains the newest `capacity` events verbatim, oldest dropped.
    #[test]
    fn overflow_drops_oldest_first(capacity in 1usize..16, n in 0u64..64) {
        let log = EventLog::new(capacity);
        for i in 0..n {
            log.record(stamped(0, i));
        }
        prop_assert_eq!(log.dropped(), n.saturating_sub(capacity as u64));
        let events = log.snapshot();
        let lo = n.saturating_sub(capacity as u64);
        prop_assert_eq!(events.len() as u64, n - lo);
        for (ev, i) in events.iter().zip(lo..n) {
            prop_assert_eq!(ev.seq, i);
            prop_assert_eq!(ev, &Event { seq: i, ..stamped(0, i) });
        }
    }

    /// Snapshots taken *during* live rebuilds: per shard, the `swap_end`
    /// events form a chain — each swap's `prev_epoch` is the previous
    /// swap's `epoch`, strictly increasing — in every mid-swap snapshot,
    /// not just the final one.
    #[test]
    fn snapshot_during_swaps_sees_monotone_epochs(rebuilds in 1usize..6) {
        let pairs = (0..400u64).map(|i| (format!("com.mail@user{i:04}").into_bytes(), i));
        let store = Arc::new(
            HopeStore::build(StoreConfig { shards: 2, ..StoreConfig::default() }, pairs)
                .expect("store build"),
        );
        let tel = store.telemetry_handle();
        std::thread::scope(|s| {
            let swapper = {
                let store = Arc::clone(&store);
                s.spawn(move || {
                    for r in 0..rebuilds {
                        store.force_rebuild(r % 2).expect("forced rebuild");
                    }
                })
            };
            while !swapper.is_finished() {
                assert!(epochs_chain(&tel.events().snapshot()), "mid-swap snapshot broke the chain");
            }
        });
        let final_events = tel.events().snapshot();
        prop_assert!(epochs_chain(&final_events));
        let swap_ends = final_events.iter().filter(|e| e.kind == EventKind::SwapEnd).count();
        prop_assert_eq!(swap_ends, rebuilds);
        prop_assert_eq!(tel.events().dropped(), 0);
    }
}

/// Per-shard `swap_end` chain check: epochs strictly increase and each
/// link's `prev_epoch` matches its predecessor's `epoch`.
fn epochs_chain(events: &[Event]) -> bool {
    let mut last: std::collections::BTreeMap<u32, u64> = std::collections::BTreeMap::new();
    events.iter().filter(|e| e.kind == EventKind::SwapEnd).all(|e| {
        let chained = match last.insert(e.shard, e.epoch) {
            Some(prev) => e.prev_epoch == prev,
            None => true,
        };
        chained && e.epoch > e.prev_epoch
    }) && events.windows(2).all(|p| p[0].seq < p[1].seq)
}

/// The snapshot a `ServingReport` embeds and a direct `telemetry()` call
/// agree on the event history (deterministic fields).
#[test]
fn store_snapshot_and_live_log_agree() {
    let pairs = (0..300u64).map(|i| (format!("com.mail@user{i:04}").into_bytes(), i));
    let store = HopeStore::build(StoreConfig::default(), pairs).expect("store build");
    store.force_rebuild(0).expect("forced rebuild");
    let snap = store.telemetry();
    let live = store.telemetry_handle().events().snapshot();
    assert_eq!(snap.events, live);
    assert_eq!(snap.events_of(EventKind::SwapEnd).count(), 1);
    assert_eq!(snap.dropped_events, 0);
}
