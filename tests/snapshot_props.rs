//! Property suite for [`hope_store::Snapshot`] — the O(1) copy-on-write
//! point-in-time view behind `fig22_snapshot_rebuild`.
//!
//! Three behavioural claims, attacked with random op scripts:
//!
//! * **frozen equality** — a snapshot answers every point and range read
//!   from the shadow map of the capture instant, while a concurrent
//!   writer thread churns inserts, updates, and forced dictionary
//!   rebuilds through the live store. Nothing that lands after the
//!   capture is ever visible;
//! * **cursor pinning** — a snapshot cursor opened before N hot-swaps
//!   finishes its scan on the pinned generations: every served hit
//!   reports a pinned epoch (never a post-swap one) and the full result
//!   equals the shadow, regardless of how many swaps completed mid-scan;
//! * **pin release** — the snapshot's generation pins are real `Arc`s:
//!   a superseded generation stays alive exactly as long as a snapshot
//!   holds it, and dropping the last handle releases it (probed via
//!   `Arc::strong_count` on a diagnostic epoch handle).

use std::collections::BTreeMap;
use std::sync::Arc;

use hope_store::prelude::*;
use proptest::collection::vec;
use proptest::prelude::*;

/// Distinct source keys the scripts draw from: small enough that random
/// scripts revisit keys (updates), large enough to span several shards.
const KEYSPACE: u64 = 1500;

fn key(i: u64) -> Vec<u8> {
    format!("com.gmail@user{:04}", i % KEYSPACE).into_bytes()
}

fn cfg(shards: usize) -> StoreConfig {
    StoreConfig { shards, reservoir_capacity: 128, min_observed_bytes: 512, ..Default::default() }
}

/// Build a store (and its shadow) from a script of key draws; the value
/// is the draw's position, so later draws of the same key overwrite.
fn build(shards: usize, init: &[u64]) -> (Arc<HopeStore<u64>>, BTreeMap<Vec<u8>, u64>) {
    let mut shadow = BTreeMap::new();
    for (n, &x) in init.iter().enumerate() {
        shadow.insert(key(x), n as u64);
    }
    let store = HopeStore::build(cfg(shards), shadow.iter().map(|(k, v)| (k.clone(), *v))).unwrap();
    (Arc::new(store), shadow)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn snapshot_matches_shadow_under_concurrent_inserts_and_rebuilds(
        init in vec(any::<u64>(), 50..250),
        ops in vec(any::<u64>(), 1..150),
        shards in 1usize..5,
    ) {
        let (store, shadow) = build(shards, &init);
        let snap = store.snapshot();

        // A writer thread churns the live store while the main thread
        // reads the snapshot: every op is an insert/update except every
        // 16th draw, which forces a dictionary hot-swap of some shard.
        let writer = {
            let store = Arc::clone(&store);
            let ops = ops.clone();
            std::thread::spawn(move || {
                for (n, &op) in ops.iter().enumerate() {
                    if op % 16 == 0 {
                        store.force_rebuild(op as usize / 16 % store.config().shards).unwrap();
                    } else {
                        store.insert(key(op), 1_000_000 + n as u64).unwrap();
                    }
                }
            })
        };
        // Mid-churn point reads: the capture instant, nothing else.
        for (k, v) in &shadow {
            prop_assert_eq!(snap.get(k).unwrap(), Some(*v));
        }
        writer.join().unwrap();

        // Post-churn: the full snapshot range still equals the shadow
        // byte for byte, and keys born after the capture are invisible.
        prop_assert_eq!(snap.len(), shadow.len());
        let mut got = Vec::new();
        snap.range_into(b"a", b"zzzz", usize::MAX, &mut got).unwrap();
        let want: Vec<(Vec<u8>, u64)> = shadow.iter().map(|(k, v)| (k.clone(), *v)).collect();
        prop_assert_eq!(got, want);
        for &op in ops.iter().filter(|&&op| op % 16 != 0) {
            let k = key(op);
            prop_assert_eq!(snap.get(&k).unwrap(), shadow.get(&k).copied());
        }
    }

    #[test]
    fn snapshot_cursor_survives_swaps_without_crossing_epochs(
        init in vec(any::<u64>(), 60..250),
        swaps in 1usize..5,
        shards in 1usize..5,
    ) {
        let (store, shadow) = build(shards, &init);
        let snap = store.snapshot();
        let pinned = snap.epochs();
        let want: Vec<(Vec<u8>, u64)> = shadow.iter().map(|(k, v)| (k.clone(), *v)).collect();

        let mut cur = snap.cursor(b"a", b"zzzz", usize::MAX).unwrap();
        let mut got = Vec::new();
        // Pull a prefix… (hits are copied out before the epoch probe —
        // `next_hit` lends from the cursor's buffers)
        for _ in 0..want.len() / 2 {
            let hit = cur.next_hit().map(|(k, v)| (k.to_vec(), *v));
            let Some(hit) = hit else { break };
            prop_assert!(pinned.contains(&cur.hit_epoch().unwrap()));
            got.push(hit);
        }
        // …churn every shard's epoch repeatedly under the open cursor…
        for r in 0..swaps {
            for s in 0..store.config().shards {
                store.force_rebuild(s).unwrap();
            }
            store.insert(key(r as u64), 9_999_999).unwrap();
        }
        // …and finish the scan: still the capture instant, still only
        // pinned epochs.
        loop {
            let hit = cur.next_hit().map(|(k, v)| (k.to_vec(), *v));
            let Some(hit) = hit else { break };
            prop_assert!(pinned.contains(&cur.hit_epoch().unwrap()));
            got.push(hit);
        }
        prop_assert!(cur.error().is_none());
        prop_assert_eq!(got, want);
    }
}

#[test]
fn dropping_the_last_snapshot_handle_releases_pinned_generations() {
    let (store, _) = build(2, &(0..200).collect::<Vec<u64>>());
    // A diagnostic handle to shard 0's current generation: the probe the
    // strong count is read through.
    let probe = store.generation(0).unwrap();
    let snap = store.snapshot();
    // Holders now: the shard's epoch slot, the probe, the snapshot pin.
    assert_eq!(Arc::strong_count(&probe), 3);
    store.force_rebuild(0).unwrap();
    // The swap retired the store's handle; the snapshot keeps the old
    // generation alive (this is what "readers drain gracefully" means).
    assert_eq!(Arc::strong_count(&probe), 2);
    assert_eq!(snap.get(b"com.gmail@user0000").unwrap(), Some(0));
    drop(snap);
    // Last external pin gone: only the probe itself remains, i.e. the
    // store no longer retains any reference to the superseded generation.
    assert_eq!(Arc::strong_count(&probe), 1);
}
