//! v1 acceptance: `HopeStore<V>` round-trips non-`u64` payloads through
//! every serving path — build, point gets, inserts, cursors, and
//! dictionary hot-swaps — and the pluggable-index hook
//! (`Backend::Custom`) serves a user-supplied `OrderedIndex`.

use std::collections::BTreeMap;

use hope_store::prelude::*;

/// A "document" payload: owned bytes plus a revision counter — `Clone +
/// Send + Sync + Debug`, nothing else, exactly the [`hope::Value`] bound.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Doc {
    body: Vec<u8>,
    rev: u32,
}

fn doc(i: u32, rev: u32) -> Doc {
    Doc { body: format!("payload for user {i}, rev {rev}").into_bytes(), rev }
}

fn load(n: u32) -> Vec<(Vec<u8>, Doc)> {
    (0..n).map(|i| (format!("com.gmail@user{i:05}").into_bytes(), doc(i, 0))).collect()
}

#[test]
fn vec_u8_payloads_round_trip_through_build_probe_and_swap() {
    let pairs: Vec<(Vec<u8>, Vec<u8>)> = (0..2_000u32)
        .map(|i| (format!("com.gmail@user{i:05}").into_bytes(), format!("doc-{i}").into_bytes()))
        .collect();
    let store: HopeStore<Vec<u8>> =
        HopeStore::build(StoreConfig::default(), pairs.clone()).unwrap();
    let mut shadow: BTreeMap<Vec<u8>, Vec<u8>> = pairs.into_iter().collect();

    assert_eq!(store.get(b"com.gmail@user00042").unwrap(), Some(b"doc-42".to_vec()));
    // Zero-clone read path for heavy payloads.
    assert_eq!(store.get_with(b"com.gmail@user00042", |v| v.len()).unwrap(), Some(6));

    // Updates return the superseded payload.
    let old = store.insert(b"com.gmail@user00042".to_vec(), b"doc-42v2".to_vec()).unwrap();
    assert_eq!(old, shadow.insert(b"com.gmail@user00042".to_vec(), b"doc-42v2".to_vec()));

    // Cursor pull across every shard matches the shadow map.
    let mut cur = store.cursor(b"", b"\xff", usize::MAX).unwrap();
    let mut seen = 0usize;
    let mut expect = shadow.iter();
    while let Some((k, v)) = cur.next_hit() {
        let (wk, wv) = expect.next().expect("cursor emitted too many hits");
        assert_eq!((k, v), (wk.as_slice(), wv));
        seen += 1;
    }
    assert_eq!(seen, shadow.len());

    // Hot-swap every shard: keys are re-encoded, payloads carried through.
    for s in 0..store.config().shards {
        store.force_rebuild(s).unwrap();
    }
    for (k, v) in shadow.iter().step_by(97) {
        assert_eq!(store.get(k).unwrap().as_ref(), Some(v));
    }
    assert_eq!(store.len(), shadow.len());
}

#[test]
fn struct_payloads_serve_through_the_visitor_and_maintenance() {
    let cfg = StoreConfig { shards: 2, min_observed_bytes: 1024, ..StoreConfig::default() };
    let store: HopeStore<Doc> = HopeStore::build(cfg, load(800)).unwrap();

    assert_eq!(store.get(b"com.gmail@user00007").unwrap(), Some(doc(7, 0)));
    store.insert(b"com.gmail@user00007".to_vec(), doc(7, 1)).unwrap();

    let mut revs = Vec::new();
    let hits = store
        .range_with(b"com.gmail@user00006", b"com.gmail@user00008", 10, |_, d| revs.push(d.rev))
        .unwrap();
    assert_eq!(hits, 3);
    assert_eq!(revs, vec![0, 1, 0]);

    // Drift traffic with struct payloads, then maintenance swaps.
    for i in 0..900u32 {
        store.insert(format!("XQ#{i:}!!zw|{i:x}").into_bytes(), doc(i, 9)).unwrap();
    }
    let (swaps, errors) = store.maintain();
    assert!(errors.is_empty(), "{errors:?}");
    assert!(!swaps.is_empty(), "drifted traffic must trigger a swap");
    assert_eq!(store.get(b"com.gmail@user00007").unwrap(), Some(doc(7, 1)));
    assert_eq!(store.get(b"XQ#13!!zw|d").unwrap(), Some(doc(13, 9)));
}

/// A user-supplied index through the `Backend::Custom` factory hook: the
/// store's shards index slot ids (`SlotId`) in whatever structure the
/// factory returns.
#[test]
fn custom_index_factory_plugs_into_the_store() {
    fn shadow_index() -> Box<dyn hope::OrderedIndex<SlotId>> {
        Box::<BTreeMap<Vec<u8>, SlotId>>::default()
    }
    let cfg = StoreConfig { backend: Backend::Custom(shadow_index), ..StoreConfig::default() };
    let store: HopeStore<Vec<u8>> = HopeStore::build(
        cfg,
        (0..500u32).map(|i| (format!("user{i:04}").into_bytes(), vec![i as u8])),
    )
    .unwrap();
    assert_eq!(store.get(b"user0123").unwrap(), Some(vec![123]));
    let mut out = Vec::new();
    store.range_into(b"user0100", b"user0104", 10, &mut out).unwrap();
    assert_eq!(out.len(), 5);
    // Swaps build fresh indexes through the same factory.
    store.force_rebuild(0).unwrap();
    assert_eq!(store.get(b"user0123").unwrap(), Some(vec![123]));
    // The config (with its factory) stays copyable/debuggable.
    let copied = *store.config();
    assert!(format!("{copied:?}").contains("Custom"));
}
