//! Compression-quality and encoder-behaviour invariants at integration
//! scale: CPR thresholds per scheme, batch/individual equality, lossless
//! round trips, and the scheme ordering the paper reports.

use hope::{stats, HopeBuilder, Scheme};
use hope_workloads::{generate, sample_keys, Dataset};

fn build(scheme: Scheme, sample: &[Vec<u8>], dict: usize) -> hope::Hope {
    HopeBuilder::new(scheme)
        .dictionary_entries(dict)
        .build_from_sample(sample.iter().cloned())
        .expect("build")
}

#[test]
fn every_scheme_compresses_every_dataset() {
    for dataset in Dataset::ALL {
        let keys = generate(dataset, 5000, 23);
        let sample = sample_keys(&keys, 20.0, 1);
        for scheme in Scheme::ALL {
            let hope = build(scheme, &sample, 1 << 14);
            let st = stats::measure(&hope, &keys);
            assert!(st.cpr() > 1.1, "{dataset}/{scheme}: cpr {:.3} (no compression)", st.cpr());
        }
    }
}

#[test]
fn higher_order_schemes_beat_single_char() {
    // Figure 8's headline ordering: Double-Char > Single-Char, and the
    // VIVC schemes (at 16K entries) > Double-Char.
    for dataset in Dataset::ALL {
        let keys = generate(dataset, 5000, 29);
        let sample = sample_keys(&keys, 20.0, 2);
        let single = stats::measure(&build(Scheme::SingleChar, &sample, 256), &keys).cpr();
        let double = stats::measure(&build(Scheme::DoubleChar, &sample, 0x10100), &keys).cpr();
        let four = stats::measure(&build(Scheme::FourGrams, &sample, 1 << 14), &keys).cpr();
        assert!(double > single, "{dataset}: double {double:.3} <= single {single:.3}");
        assert!(four > double, "{dataset}: 4-grams {four:.3} <= double {double:.3}");
    }
}

#[test]
fn larger_dictionaries_do_not_hurt_vivc_compression() {
    let keys = generate(Dataset::Email, 5000, 31);
    let sample = sample_keys(&keys, 50.0, 3);
    for scheme in [Scheme::ThreeGrams, Scheme::FourGrams] {
        let small = stats::measure(&build(scheme, &sample, 1 << 10), &keys).cpr();
        let large = stats::measure(&build(scheme, &sample, 1 << 14), &keys).cpr();
        assert!(
            large >= small * 0.98,
            "{scheme}: cpr fell from {small:.3} to {large:.3} with a larger dict"
        );
    }
}

#[test]
fn batch_encoding_equals_individual_on_real_data() {
    let mut keys = generate(Dataset::Email, 3000, 37);
    keys.sort();
    let sample = sample_keys(&keys, 20.0, 4);
    let refs: Vec<&[u8]> = keys.iter().map(|k| k.as_slice()).collect();
    for scheme in Scheme::ALL {
        let hope = build(scheme, &sample, 1 << 12);
        for bs in [2usize, 8, 32] {
            let batch = hope.encode_batch(&refs, bs);
            for (k, e) in refs.iter().zip(&batch) {
                assert_eq!(e, &hope.encode(k), "{scheme} bs={bs}");
            }
        }
    }
}

#[test]
fn lossless_roundtrip_on_all_datasets() {
    for dataset in Dataset::ALL {
        let keys = generate(dataset, 2000, 41);
        let sample = sample_keys(&keys, 20.0, 5);
        for scheme in Scheme::ALL {
            let hope = build(scheme, &sample, 1 << 12);
            let dec = hope.decoder();
            for k in keys.iter().step_by(17) {
                let e = hope.encode(k);
                assert_eq!(
                    dec.decode(&e).as_deref(),
                    Ok(k.as_slice()),
                    "{dataset}/{scheme}: roundtrip of {k:?}"
                );
            }
        }
    }
}

#[test]
fn dictionary_correctness_is_sample_independent() {
    // §4.1: the sample only affects the compression rate, never
    // correctness. Build from a *mismatched* sample and verify ordering
    // and losslessness still hold on a foreign dataset.
    let wiki_sample = sample_keys(&generate(Dataset::Wiki, 2000, 43), 50.0, 6);
    let urls = generate(Dataset::Url, 1500, 47);
    for scheme in Scheme::ALL {
        let hope = build(scheme, &wiki_sample, 1 << 12);
        let dec = hope.decoder();
        let mut enc: Vec<(hope::EncodedKey, &Vec<u8>)> =
            urls.iter().map(|k| (hope.encode(k), k)).collect();
        enc.sort_by(|a, b| a.0.cmp(&b.0));
        let mut expect: Vec<&Vec<u8>> = urls.iter().collect();
        expect.sort();
        assert_eq!(
            enc.iter().map(|(_, k)| *k).collect::<Vec<_>>(),
            expect,
            "{scheme}: order broke on foreign keys"
        );
        for (e, k) in enc.iter().step_by(97) {
            assert_eq!(dec.decode(e).as_deref(), Ok(k.as_slice()), "{scheme}");
        }
    }
}

#[test]
fn build_timings_are_populated() {
    let keys = generate(Dataset::Email, 2000, 53);
    let sample = sample_keys(&keys, 50.0, 7);
    for scheme in Scheme::ALL {
        let hope = build(scheme, &sample, 1 << 12);
        let t = hope.timings();
        assert!(t.total().as_nanos() > 0, "{scheme}");
        assert!(t.symbol_select.as_nanos() > 0, "{scheme}: selector untimed");
    }
}
