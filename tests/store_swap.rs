//! Integration suite for the `hope_store` dictionary hot-swap: the store
//! must be indistinguishable from an uncompressed ordered map before,
//! during, and after a swap — including under concurrent readers while a
//! generation is being replaced. Readers also push range hits through an
//! encode→decode round-trip (`FastDecoder::decode_batch`) against the
//! live generation, so losslessness is checked mid-swap too.
//!
//! Sizes scale up in `--release` (CI runs this suite in both profiles;
//! the release run is the stress configuration).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use hope::{DecodeScratch, EncodedKey, Scheme};
use hope_store::{Backend, HopeStore, StoreConfig};
use hope_workloads::{MixedWorkload, StoreOp, TrafficSpec};
use proptest::prelude::*;

fn email_pairs(n: u64) -> Vec<(Vec<u8>, u64)> {
    (0..n).map(|i| (format!("com.gmail@user{i:06}").into_bytes(), i)).collect()
}

/// Deterministic end-to-end: load, drift, swap, and compare the full
/// contents and a spread of ranges against the shadow map.
#[test]
fn swap_preserves_gets_and_ranges_exactly() {
    let cfg = StoreConfig { shards: 3, min_observed_bytes: 1024, ..StoreConfig::default() };
    let store = HopeStore::build(cfg, email_pairs(3_000)).unwrap();
    let mut shadow: BTreeMap<Vec<u8>, u64> = email_pairs(3_000).into_iter().collect();
    let epochs_before = store.epochs();

    // Drift: traffic the build sample never saw.
    for i in 0..1_500u64 {
        let k = format!("ru.yandex/{i:x}/box{i:05}").into_bytes();
        assert_eq!(store.insert(k.clone(), i), shadow.insert(k, i));
    }
    let (swaps, errors) = store.maintain();
    assert!(errors.is_empty(), "{errors:?}");
    assert!(!swaps.is_empty(), "drift should have triggered at least one swap");
    assert!(store.epochs().iter().zip(&epochs_before).any(|(a, b)| a > b));

    // Every key, point-queried.
    for (k, v) in &shadow {
        assert_eq!(store.get(k), Some(*v));
    }
    // Ranges spanning shard boundaries and both populations.
    let probes: Vec<&[u8]> =
        vec![b"com.gmail@user000000", b"com.gmail@user001499", b"ru.yandex/", b"", b"zzz"];
    for low in &probes {
        for high in &probes {
            for limit in [1usize, 7, 100, usize::MAX] {
                let got = store.range(low, high, limit);
                let want: Vec<(Vec<u8>, u64)> = if low > high {
                    Vec::new() // BTreeMap::range panics on inverted bounds
                } else {
                    shadow
                        .range(low.to_vec()..=high.to_vec())
                        .take(limit)
                        .map(|(k, v)| (k.clone(), *v))
                        .collect()
                };
                assert_eq!(got, want, "range {low:?}..={high:?} limit {limit}");
            }
        }
    }
}

// The swap is exact for *arbitrary byte keys* — including the
// padded-byte tie corner — because generations re-check source keys.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn store_matches_btreemap_across_forced_swaps(
        ops in proptest::collection::vec(
            (proptest::collection::vec(any::<u8>(), 0..20), any::<u64>()), 2..120),
        probes in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..20), 0..24),
    ) {
        let cfg = StoreConfig {
            shards: 2,
            scheme: Scheme::ThreeGrams,
            dict_entries: 512,
            backend: Backend::Art,
            min_observed_bytes: u64::MAX, // only explicit swaps
            ..StoreConfig::default()
        };
        let (load, live) = ops.split_at(ops.len() / 2);
        let store = HopeStore::build(cfg, load.to_vec()).unwrap();
        let mut model: BTreeMap<Vec<u8>, u64> = load.iter().cloned().collect();
        for (i, (k, v)) in live.iter().enumerate() {
            prop_assert_eq!(store.insert(k.clone(), *v), model.insert(k.clone(), *v));
            if i % 13 == 5 {
                store.force_rebuild(i % 2).unwrap();
            }
        }
        store.force_rebuild(0).unwrap();
        prop_assert_eq!(store.len(), model.len());
        for (k, v) in &model {
            prop_assert_eq!(store.get(k), Some(*v), "lost {:?}", k);
        }
        for p in &probes {
            prop_assert_eq!(store.get(p), model.get(p).copied());
        }
        for pair in probes.chunks(2) {
            if let [a, b] = pair {
                let (low, high) = if a <= b { (a, b) } else { (b, a) };
                let got = store.range(low, high, 16);
                let want: Vec<(Vec<u8>, u64)> = model
                    .range(low.clone()..=high.clone())
                    .take(16)
                    .map(|(k, v)| (k.clone(), *v))
                    .collect();
                prop_assert_eq!(got, want, "range {:?}..={:?}", low, high);
            }
        }
    }
}

/// The headline concurrency property: reader threads hammer the loaded
/// keys with point and range queries while the main thread applies
/// shifting write traffic and hot-swaps every shard mid-stream. No reader
/// may ever observe a wrong answer — before, during, or after the swaps.
#[test]
fn hot_swap_under_concurrent_readers() {
    let (n_initial, n_ops) = if cfg!(debug_assertions) { (2_000, 2_000) } else { (20_000, 30_000) };
    let workload = MixedWorkload::generate(n_initial, n_ops, TrafficSpec::default(), 0xFEED);
    let cfg = StoreConfig { min_observed_bytes: 4096, ..StoreConfig::default() };
    let initial: Vec<(Vec<u8>, u64)> =
        workload.initial.iter().enumerate().map(|(i, k)| (k.clone(), i as u64)).collect();
    let store = Arc::new(HopeStore::build(cfg, initial.clone()).unwrap());
    let mut shadow: BTreeMap<Vec<u8>, u64> = initial.clone().into_iter().collect();

    let stop = Arc::new(AtomicBool::new(false));
    let frozen = Arc::new(initial);
    let readers: Vec<_> = (0..3)
        .map(|t| {
            let (store, stop, frozen) =
                (Arc::clone(&store), Arc::clone(&stop), Arc::clone(&frozen));
            std::thread::spawn(move || {
                let mut checks = 0u64;
                let mut i = t * 131;
                let mut decode_scratch = DecodeScratch::new();
                let mut range_keys: Vec<Vec<u8>> = Vec::new();
                // FastDecoder construction is table-sized work; cache it
                // per generation epoch so the thread spends its stress
                // window racing the swap, not rebuilding tables.
                let mut cached_decoder: Option<(u64, hope::FastDecoder)> = None;
                while !stop.load(Ordering::Relaxed) {
                    let (k, v) = &frozen[i % frozen.len()];
                    assert_eq!(store.get(k), Some(*v), "wrong point result for {k:?}");
                    match i % 3 {
                        0 => {
                            // Exact single-key range, via the zero-alloc
                            // visitor scan.
                            let mut ok = false;
                            let hits = store.range_with(k, k, 2, |rk, rv| {
                                ok = rk == k.as_slice() && rv == *v;
                            });
                            assert!(hits == 1 && ok, "wrong single-key range for {k:?}");
                        }
                        1 => {
                            // Open-ended range: the anchor key must lead it
                            // even while writers add keys above.
                            let mut high = k.clone();
                            high.push(0xFF);
                            let got = store.range(k, &high, 8);
                            assert_eq!(got.first(), Some(&(k.clone(), *v)));
                            assert!(got.windows(2).all(|w| w[0].0 < w[1].0), "unsorted range");
                            assert!(got.iter().all(|(rk, _)| rk >= k && rk <= &high));
                            range_keys.clear();
                            range_keys.extend(got.into_iter().map(|(rk, _)| rk));
                            if i % 63 == 1 {
                                // Encode→decode round-trip of the scan's
                                // hits against whichever generation is
                                // serving this shard right now — the
                                // encoding must stay lossless before,
                                // during, and after every hot-swap.
                                let generation = store.generation(store.shard_of(k));
                                let encoded: Vec<EncodedKey> = range_keys
                                    .iter()
                                    .map(|rk| generation.hope().encode(rk))
                                    .collect();
                                let stale = !matches!(&cached_decoder,
                                    Some((epoch, _)) if *epoch == generation.epoch());
                                if stale {
                                    cached_decoder = Some((
                                        generation.epoch(),
                                        generation.hope().fast_decoder(),
                                    ));
                                }
                                let fast = &cached_decoder.as_ref().expect("just filled").1;
                                let batch = fast
                                    .decode_batch_keys(&encoded, &mut decode_scratch)
                                    .expect("range hits must decode");
                                for (rk, back) in range_keys.iter().zip(batch.iter()) {
                                    assert_eq!(back, rk.as_slice(), "round-trip broke mid-swap");
                                }
                            }
                        }
                        _ => {}
                    }
                    checks += 1;
                    i += 1;
                }
                checks
            })
        })
        .collect();

    // Apply the shifting traffic; force a swap of every shard mid-stream
    // (on top of whatever drift-triggered swaps maintenance performs).
    let force_at = workload.shift_at + (n_ops - workload.shift_at) / 2;
    let epochs_start = store.epochs();
    for (i, op) in workload.ops.iter().enumerate() {
        match op {
            StoreOp::Get(k) => {
                assert_eq!(store.get(k), shadow.get(k).copied());
            }
            StoreOp::Insert(k, v) => {
                assert_eq!(store.insert(k.clone(), *v), shadow.insert(k.clone(), *v));
            }
            StoreOp::Scan(low, high, limit) => {
                let got = store.range(low, high, *limit);
                let want: Vec<(Vec<u8>, u64)> = shadow
                    .range(low.clone()..=high.clone())
                    .take(*limit)
                    .map(|(k, v)| (k.clone(), *v))
                    .collect();
                assert_eq!(got, want);
            }
        }
        if i == force_at {
            for s in 0..store.config().shards {
                store.force_rebuild(s).unwrap();
            }
        }
        if (i + 1) % (n_ops / 10).max(1) == 0 {
            let (_, errors) = store.maintain();
            assert!(errors.is_empty(), "{errors:?}");
        }
    }
    stop.store(true, Ordering::Relaxed);
    let checks: u64 = readers.into_iter().map(|r| r.join().expect("reader failed")).sum();
    assert!(checks > 0, "readers never ran");

    // Every shard flipped its epoch at least once while readers were live.
    let epochs_end = store.epochs();
    assert!(
        epochs_end.iter().zip(&epochs_start).all(|(a, b)| a > b),
        "not every shard swapped: {epochs_start:?} -> {epochs_end:?}"
    );
    // Full post-swap verification.
    assert_eq!(store.len(), shadow.len());
    for (k, v) in &shadow {
        assert_eq!(store.get(k), Some(*v));
    }
}
