//! Integration suite for the `hope_store` dictionary hot-swap: the store
//! must be indistinguishable from an uncompressed ordered map before,
//! during, and after a swap — including under concurrent readers while a
//! generation is being replaced. Readers also push range hits through an
//! encode→decode round-trip (`FastDecoder::decode_batch`) against the
//! live generation, so losslessness is checked mid-swap too.
//!
//! Range queries run through the v1 [`hope_store::RangeCursor`] (pull and
//! push forms); dedicated tests cover the cursor's edge cases and its
//! behaviour when a dictionary hot-swap lands mid-iteration.
//!
//! Sizes scale up in `--release` (CI runs this suite in both profiles;
//! the release run is the stress configuration).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use hope::{DecodeScratch, EncodedKey, Scheme};
use hope_store::serving::{FaultPlan, Request, Response, ScanSummary, Server, ServingConfig};
use hope_store::telemetry::EventKind;
use hope_store::{Backend, HopeStore, StoreConfig, StoreError};
use hope_workloads::{MixedWorkload, StoreOp, TrafficSpec};
use proptest::prelude::*;

fn email_pairs(n: u64) -> Vec<(Vec<u8>, u64)> {
    (0..n).map(|i| (format!("com.gmail@user{i:06}").into_bytes(), i)).collect()
}

/// Collect a bounded range through the cursor, asserting pull and push
/// agree — every scan in this suite doubles as a cursor-equivalence check.
fn range(store: &HopeStore<u64>, low: &[u8], high: &[u8], limit: usize) -> Vec<(Vec<u8>, u64)> {
    let mut pushed = Vec::new();
    let n = store.range_into(low, high, limit, &mut pushed).expect("valid bounds");
    assert_eq!(n, pushed.len());
    let mut cur = store.cursor(low, high, limit).expect("valid bounds");
    let mut pulled = Vec::new();
    while let Some((k, v)) = cur.next_hit() {
        pulled.push((k.to_vec(), *v));
    }
    assert!(cur.error().is_none(), "{:?}", cur.error());
    assert_eq!(pulled, pushed, "pull and push cursors disagree");
    pushed
}

/// Deterministic end-to-end: load, drift, swap, and compare the full
/// contents and a spread of ranges against the shadow map.
#[test]
fn swap_preserves_gets_and_ranges_exactly() {
    let cfg = StoreConfig { shards: 3, min_observed_bytes: 1024, ..StoreConfig::default() };
    let store = HopeStore::build(cfg, email_pairs(3_000)).unwrap();
    let mut shadow: BTreeMap<Vec<u8>, u64> = email_pairs(3_000).into_iter().collect();
    let epochs_before = store.epochs();

    // Drift: traffic the build sample never saw.
    for i in 0..1_500u64 {
        let k = format!("ru.yandex/{i:x}/box{i:05}").into_bytes();
        assert_eq!(store.insert(k.clone(), i).unwrap(), shadow.insert(k, i));
    }
    let (swaps, errors) = store.maintain();
    assert!(errors.is_empty(), "{errors:?}");
    assert!(!swaps.is_empty(), "drift should have triggered at least one swap");
    assert!(store.epochs().iter().zip(&epochs_before).any(|(a, b)| a > b));

    // Every key, point-queried.
    for (k, v) in &shadow {
        assert_eq!(store.get(k).unwrap(), Some(*v));
    }
    // Ranges spanning shard boundaries and both populations.
    let probes: Vec<&[u8]> =
        vec![b"com.gmail@user000000", b"com.gmail@user001499", b"ru.yandex/", b"", b"zzz"];
    for low in &probes {
        for high in &probes {
            for limit in [1usize, 7, 100, usize::MAX] {
                let got = range(&store, low, high, limit);
                let want: Vec<(Vec<u8>, u64)> = if low > high {
                    Vec::new() // BTreeMap::range panics on inverted bounds
                } else {
                    shadow
                        .range(low.to_vec()..=high.to_vec())
                        .take(limit)
                        .map(|(k, v)| (k.clone(), *v))
                        .collect()
                };
                assert_eq!(got, want, "range {low:?}..={high:?} limit {limit}");
            }
        }
    }
}

/// The satellite edge cases, all through the cursor: empty range,
/// inverted bounds, equal bounds, limit 0 — plus the deprecated shim
/// agreeing with the cursor it wraps.
#[test]
fn cursor_edge_cases() {
    let store =
        HopeStore::build(StoreConfig { shards: 2, ..StoreConfig::default() }, email_pairs(200))
            .unwrap();

    // Empty range (bounds between keys): no hits, no error.
    assert!(range(&store, b"com.gmail@user000010x", b"com.gmail@user000010zzz", 10).is_empty());
    // Inverted bounds: empty cursor, not an error.
    let mut cur = store.cursor(b"z", b"a", 10).unwrap();
    assert!(cur.next_hit().is_none());
    assert!(cur.error().is_none());
    assert_eq!(store.range_with(b"z", b"a", 10, |_, _| panic!("no hits")).unwrap(), 0);
    // Bounds equal, key present: exactly that key.
    let got = range(&store, b"com.gmail@user000007", b"com.gmail@user000007", 10);
    assert_eq!(got, vec![(b"com.gmail@user000007".to_vec(), 7)]);
    // Bounds equal, key absent: nothing.
    assert!(range(&store, b"com.gmail@userX", b"com.gmail@userX", 10).is_empty());
    // Limit 0: empty cursor with zero remaining.
    let mut cur = store.cursor(b"", b"\xff", 0).unwrap();
    assert_eq!(cur.remaining(), 0);
    assert!(cur.next_hit().is_none());
    // Limit truncates mid-shard and `remaining` counts down.
    let mut cur = store.cursor(b"", b"\xff", 5).unwrap();
    assert_eq!(cur.remaining(), 5);
    assert!(cur.next_hit().is_some());
    assert_eq!(cur.remaining(), 4);
    // The deprecated shim returns what the cursor returns.
    #[allow(deprecated)]
    {
        assert_eq!(
            store.range(b"com.gmail@user000000", b"com.gmail@user000004", 3),
            range(&store, b"com.gmail@user000000", b"com.gmail@user000004", 3)
        );
    }
}

/// A cursor held across a concurrent dictionary swap keeps serving a
/// consistent view: it pins each shard's generation on entry, so hits
/// stay exact and ordered even though every shard's dictionary was
/// replaced mid-iteration.
#[test]
fn cursor_survives_concurrent_dictionary_swap() {
    let cfg = StoreConfig { shards: 3, ..StoreConfig::default() };
    let n = 3_000u64;
    let store = HopeStore::build(cfg, email_pairs(n)).unwrap();

    let mut cur = store.cursor(b"", b"\xff\xff", usize::MAX).unwrap();
    let mut seen: Vec<(Vec<u8>, u64)> = Vec::new();
    // Pull a prefix (deep enough to be mid-shard), then swap every shard.
    for _ in 0..500 {
        let (k, v) = cur.next_hit().expect("prefix available");
        seen.push((k.to_vec(), *v));
    }
    let epochs_before = store.epochs();
    for s in 0..store.config().shards {
        store.force_rebuild(s).unwrap();
    }
    assert!(store.epochs().iter().zip(&epochs_before).all(|(a, b)| a > b));
    // Drain the rest across the swapped generations.
    while let Some((k, v)) = cur.next_hit() {
        seen.push((k.to_vec(), *v));
    }
    assert!(cur.error().is_none());
    assert_eq!(seen.len() as u64, n, "cursor lost or duplicated hits across the swap");
    assert!(seen.windows(2).all(|w| w[0].0 < w[1].0), "cursor order broke across the swap");
    for (i, (k, v)) in seen.iter().enumerate() {
        assert_eq!(k, &format!("com.gmail@user{i:06}").into_bytes());
        assert_eq!(*v, i as u64);
    }
}

// The swap is exact for *arbitrary byte keys* — including the
// padded-byte tie corner — because generations re-check source keys.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn store_matches_btreemap_across_forced_swaps(
        ops in proptest::collection::vec(
            (proptest::collection::vec(any::<u8>(), 0..20), any::<u64>()), 2..120),
        probes in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..20), 0..24),
    ) {
        let cfg = StoreConfig {
            shards: 2,
            scheme: Scheme::ThreeGrams,
            dict_entries: 512,
            backend: Backend::Art,
            min_observed_bytes: u64::MAX, // only explicit swaps
            ..StoreConfig::default()
        };
        let (load, live) = ops.split_at(ops.len() / 2);
        let store = HopeStore::build(cfg, load.to_vec()).unwrap();
        let mut model: BTreeMap<Vec<u8>, u64> = load.iter().cloned().collect();
        for (i, (k, v)) in live.iter().enumerate() {
            prop_assert_eq!(store.insert(k.clone(), *v).unwrap(), model.insert(k.clone(), *v));
            if i % 13 == 5 {
                store.force_rebuild(i % 2).unwrap();
            }
        }
        store.force_rebuild(0).unwrap();
        prop_assert_eq!(store.len(), model.len());
        for (k, v) in &model {
            prop_assert_eq!(store.get(k).unwrap(), Some(*v), "lost {:?}", k);
        }
        for p in &probes {
            prop_assert_eq!(store.get(p).unwrap(), model.get(p).copied());
        }
        for pair in probes.chunks(2) {
            if let [a, b] = pair {
                let (low, high) = if a <= b { (a, b) } else { (b, a) };
                let got = range(&store, low, high, 16);
                let want: Vec<(Vec<u8>, u64)> = model
                    .range(low.clone()..=high.clone())
                    .take(16)
                    .map(|(k, v)| (k.clone(), *v))
                    .collect();
                prop_assert_eq!(got, want, "range {:?}..={:?}", low, high);
            }
        }
    }
}

/// The headline concurrency property: reader threads hammer the loaded
/// keys with point and range queries while the main thread applies
/// shifting write traffic and hot-swaps every shard mid-stream. No reader
/// may ever observe a wrong answer — before, during, or after the swaps.
#[test]
fn hot_swap_under_concurrent_readers() {
    let (n_initial, n_ops) = if cfg!(debug_assertions) { (2_000, 2_000) } else { (20_000, 30_000) };
    let workload = MixedWorkload::generate(n_initial, n_ops, TrafficSpec::default(), 0xFEED);
    let cfg = StoreConfig { min_observed_bytes: 4096, ..StoreConfig::default() };
    let initial: Vec<(Vec<u8>, u64)> =
        workload.initial.iter().enumerate().map(|(i, k)| (k.clone(), i as u64)).collect();
    let store = Arc::new(HopeStore::build(cfg, initial.clone()).unwrap());
    let mut shadow: BTreeMap<Vec<u8>, u64> = initial.clone().into_iter().collect();

    let stop = Arc::new(AtomicBool::new(false));
    let frozen = Arc::new(initial);
    let readers: Vec<_> = (0..3)
        .map(|t| {
            let (store, stop, frozen) =
                (Arc::clone(&store), Arc::clone(&stop), Arc::clone(&frozen));
            std::thread::spawn(move || {
                let mut checks = 0u64;
                let mut i = t * 131;
                let mut decode_scratch = DecodeScratch::new();
                let mut range_keys: Vec<Vec<u8>> = Vec::new();
                // FastDecoder construction is table-sized work; cache it
                // per generation epoch so the thread spends its stress
                // window racing the swap, not rebuilding tables.
                let mut cached_decoder: Option<(u64, hope::FastDecoder)> = None;
                while !stop.load(Ordering::Relaxed) {
                    let (k, v) = &frozen[i % frozen.len()];
                    assert_eq!(store.get(k).unwrap(), Some(*v), "wrong point result for {k:?}");
                    match i % 3 {
                        0 => {
                            // Exact single-key range, via the zero-alloc
                            // visitor scan.
                            let mut ok = false;
                            let hits = store
                                .range_with(k, k, 2, |rk, rv| {
                                    ok = rk == k.as_slice() && *rv == *v;
                                })
                                .unwrap();
                            assert!(hits == 1 && ok, "wrong single-key range for {k:?}");
                        }
                        1 => {
                            // Open-ended range through the pull cursor: the
                            // anchor key must lead it even while writers add
                            // keys above.
                            let mut high = k.clone();
                            high.push(0xFF);
                            let mut cur = store.cursor(k, &high, 8).unwrap();
                            range_keys.clear();
                            let mut first_val = None;
                            while let Some((rk, rv)) = cur.next_hit() {
                                if first_val.is_none() {
                                    first_val = Some(*rv);
                                }
                                range_keys.push(rk.to_vec());
                            }
                            assert!(cur.error().is_none());
                            assert_eq!(range_keys.first(), Some(k), "anchor key missing");
                            assert_eq!(first_val, Some(*v));
                            assert!(range_keys.windows(2).all(|w| w[0] < w[1]), "unsorted range");
                            assert!(range_keys.iter().all(|rk| rk >= k && rk <= &high));
                            if i % 63 == 1 {
                                // Encode→decode round-trip of the scan's
                                // hits against whichever generation is
                                // serving this shard right now — the
                                // encoding must stay lossless before,
                                // during, and after every hot-swap.
                                let generation = store.generation(store.shard_of(k)).unwrap();
                                let encoded: Vec<EncodedKey> = range_keys
                                    .iter()
                                    .map(|rk| generation.hope().encode(rk))
                                    .collect();
                                let stale = !matches!(&cached_decoder,
                                    Some((epoch, _)) if *epoch == generation.epoch());
                                if stale {
                                    cached_decoder = Some((
                                        generation.epoch(),
                                        generation.hope().fast_decoder(),
                                    ));
                                }
                                let fast = &cached_decoder.as_ref().expect("just filled").1;
                                let batch = fast
                                    .decode_batch_keys(&encoded, &mut decode_scratch)
                                    .expect("range hits must decode");
                                for (rk, back) in range_keys.iter().zip(batch.iter()) {
                                    assert_eq!(back, rk.as_slice(), "round-trip broke mid-swap");
                                }
                            }
                        }
                        _ => {}
                    }
                    checks += 1;
                    i += 1;
                }
                checks
            })
        })
        .collect();

    // Apply the shifting traffic; force a swap of every shard mid-stream
    // (on top of whatever drift-triggered swaps maintenance performs).
    let force_at = workload.shift_at + (n_ops - workload.shift_at) / 2;
    let epochs_start = store.epochs();
    for (i, op) in workload.ops.iter().enumerate() {
        match op {
            StoreOp::Get(k) => {
                assert_eq!(store.get(k).unwrap(), shadow.get(k).copied());
            }
            StoreOp::Insert(k, v) => {
                assert_eq!(store.insert(k.clone(), *v).unwrap(), shadow.insert(k.clone(), *v));
            }
            StoreOp::Scan(low, high, limit) => {
                let got = range(&store, low, high, *limit);
                let want: Vec<(Vec<u8>, u64)> = shadow
                    .range(low.clone()..=high.clone())
                    .take(*limit)
                    .map(|(k, v)| (k.clone(), *v))
                    .collect();
                assert_eq!(got, want);
            }
        }
        if i == force_at {
            for s in 0..store.config().shards {
                store.force_rebuild(s).unwrap();
            }
        }
        if (i + 1) % (n_ops / 10).max(1) == 0 {
            let (_, errors) = store.maintain();
            assert!(errors.is_empty(), "{errors:?}");
        }
    }
    stop.store(true, Ordering::Relaxed);
    let checks: u64 = readers.into_iter().map(|r| r.join().expect("reader failed")).sum();
    assert!(checks > 0, "readers never ran");

    // Every shard flipped its epoch at least once while readers were live.
    let epochs_end = store.epochs();
    assert!(
        epochs_end.iter().zip(&epochs_start).all(|(a, b)| a > b),
        "not every shard swapped: {epochs_start:?} -> {epochs_end:?}"
    );
    // Full post-swap verification.
    assert_eq!(store.len(), shadow.len());
    for (k, v) in &shadow {
        assert_eq!(store.get(k).unwrap(), Some(*v));
    }
}

/// Injected rebuild failure, the drift-triggered path: `maintain()`
/// surfaces the [`StoreError::FaultInjected`] error, the old generation
/// keeps serving exact answers, the failure is fully attributable from
/// telemetry (RebuildFailed event, `rebuild_errors` and
/// `injected_rebuild_failures` counters), and the next maintenance pass
/// — attempt 1 at `rebuild_fail_every: 2` — heals the shard.
#[test]
fn injected_rebuild_failure_surfaces_then_heals() {
    let cfg = StoreConfig { shards: 2, min_observed_bytes: 1024, ..StoreConfig::default() };
    let store = HopeStore::build(cfg, email_pairs(2_000)).unwrap();
    let mut shadow: BTreeMap<Vec<u8>, u64> = email_pairs(2_000).into_iter().collect();

    // Drift traffic the build sample never saw, then arm the plan: every
    // even-numbered rebuild attempt per shard fails.
    for i in 0..1_000u64 {
        let k = format!("ru.yandex/{i:x}/box{i:05}").into_bytes();
        assert_eq!(store.insert(k.clone(), i).unwrap(), shadow.insert(k, i));
    }
    store.inject_faults(FaultPlan { rebuild_fail_every: 2, ..FaultPlan::default() });

    let epochs_before = store.epochs();
    let (swaps, errors) = store.maintain();
    assert!(swaps.is_empty(), "attempt 0 must fail, not swap: {swaps:?}");
    assert!(!errors.is_empty(), "drift should have forced rebuild attempts");
    for (shard, e) in &errors {
        assert!(
            matches!(e, StoreError::FaultInjected { shard: s, attempt: 0 } if s == shard),
            "unexpected error on shard {shard}: {e}"
        );
    }
    // Old generations keep serving: no epoch moved, every answer exact.
    assert_eq!(store.epochs(), epochs_before);
    for (k, v) in &shadow {
        assert_eq!(store.get(k).unwrap(), Some(*v), "wrong answer after failed rebuild");
    }
    // Attribution: the event ring and both counters agree with the
    // errors the driver collected.
    let tel = store.telemetry();
    let failed_events: Vec<_> = tel.events_of(EventKind::RebuildFailed).collect();
    assert_eq!(failed_events.len(), errors.len());
    for ev in &failed_events {
        assert!(errors.iter().any(|(s, _)| *s == ev.shard as usize));
        assert_eq!(ev.epoch, ev.prev_epoch, "a failed rebuild must not install an epoch");
    }
    assert_eq!(tel.counter("store.faults.injected_rebuild_failures"), Some(errors.len() as u64));
    let per_shard_errors: u64 =
        (0..2).map(|s| tel.counter(&format!("store.shard.{s}.rebuild_errors")).unwrap_or(0)).sum();
    assert_eq!(per_shard_errors, errors.len() as u64);

    // The next pass is attempt 1 per still-drifted shard: it heals.
    let (swaps, errors2) = store.maintain();
    assert!(errors2.is_empty(), "heal pass failed: {errors2:?}");
    assert_eq!(swaps.len(), errors.len(), "every failed shard must heal");
    assert!(store.epochs().iter().zip(&epochs_before).any(|(a, b)| a > b));
    for (k, v) in &shadow {
        assert_eq!(store.get(k).unwrap(), Some(*v), "wrong answer after heal");
    }
}

/// Injected rebuild failure, the forced path: with `rebuild_fail_every:
/// 1` every `force_rebuild` fails until [`HopeStore::clear_faults`]
/// disarms the plan, and a cleared store rebuilds normally.
#[test]
fn clear_faults_restores_forced_rebuilds() {
    let cfg = StoreConfig { shards: 2, min_observed_bytes: u64::MAX, ..StoreConfig::default() };
    let store = HopeStore::build(cfg, email_pairs(500)).unwrap();
    store.inject_faults(FaultPlan { rebuild_fail_every: 1, ..FaultPlan::default() });

    let epochs_before = store.epochs();
    for attempt in 0..3u64 {
        match store.force_rebuild(0) {
            Err(StoreError::FaultInjected { shard: 0, attempt: a }) => assert_eq!(a, attempt),
            other => panic!("attempt {attempt}: {other:?}"),
        }
    }
    assert_eq!(store.epochs(), epochs_before);
    assert_eq!(store.get(b"com.gmail@user000007").unwrap(), Some(7));

    store.clear_faults();
    store.force_rebuild(0).unwrap();
    assert!(store.epochs()[0] > epochs_before[0], "cleared store must rebuild");
    assert_eq!(store.get(b"com.gmail@user000007").unwrap(), Some(7));
    // The three forced failures stay attributed even after the heal.
    let tel = store.telemetry();
    assert_eq!(tel.counter("store.faults.injected_rebuild_failures"), Some(3));
    assert_eq!(tel.events_of(EventKind::RebuildFailed).count(), 3);
}

/// [`ScanSummary::epochs`] under a forced swap landing mid-scan: the
/// cursor pins each shard's generation on *entry*, so the shard already
/// being read stays on its old epoch while shards entered later serve
/// the new ones — and the summary's dedup keeps the list shard-ordered
/// with at most one epoch per shard, never interleaved.
#[test]
fn scan_epochs_stay_shard_ordered_when_a_swap_lands_mid_scan() {
    let shards = 4usize;
    let cfg = StoreConfig { shards, min_observed_bytes: u64::MAX, ..StoreConfig::default() };
    let n = 2_000u64;
    let store = HopeStore::build(cfg, email_pairs(n)).unwrap();
    // Builds assign epochs 1..=shards in shard order, from the store's
    // own counter — deterministic for this store instance.
    assert_eq!(store.epochs(), vec![1, 2, 3, 4]);

    let mut cur = store.cursor(b"", b"\xff\xff", usize::MAX).unwrap();
    let mut summary = ScanSummary::default();
    let note = |cur: &hope_store::RangeCursor<u64>, summary: &mut ScanSummary| {
        if let Some(e) = cur.hit_epoch() {
            summary.note_epoch(e);
        }
    };
    // Pull deep enough to be mid-way through shard 0, pinning epoch 1.
    for i in 0..10u64 {
        let (k, v) = cur.next_hit().expect("prefix available");
        assert_eq!(*v, i);
        summary.hits += 1;
        summary.key_bytes += k.len() as u64;
        note(&cur, &mut summary);
    }
    // The swap lands mid-scan: every shard steps to a new generation.
    for s in 0..shards {
        store.force_rebuild(s).unwrap();
    }
    assert_eq!(store.epochs(), vec![5, 6, 7, 8]);
    while let Some((k, _)) = cur.next_hit() {
        summary.hits += 1;
        summary.key_bytes += k.len() as u64;
        note(&cur, &mut summary);
    }
    assert!(cur.error().is_none());
    assert_eq!(summary.hits as u64, n, "swap lost or duplicated hits");

    // Shard 0 was entered pre-swap (epoch 1); shards 1..4 post-swap
    // (epochs 6, 7, 8). One epoch per shard, in shard order.
    assert_eq!(summary.epochs, vec![1, 6, 7, 8]);
    assert!(summary.epochs.len() <= shards, "more epochs than shards: torn scan");
    assert!(
        summary.epochs.windows(2).all(|w| w[0] < w[1]),
        "epoch list not shard-ordered: {:?}",
        summary.epochs
    );
    // The dedup itself: consecutive duplicates collapse, non-consecutive
    // repeats (which would mean a scan bounced between generations) stay
    // visible to the harness assertions.
    let mut s = ScanSummary::default();
    for e in [3u64, 3, 3, 7, 7, 3] {
        s.note_epoch(e);
    }
    assert_eq!(s.epochs, vec![3, 7, 3]);
}

/// The serving-harness swap scenario: scans flow through the
/// thread-per-core pipeline while every shard's dictionary is hot-swapped
/// repeatedly underneath it. Two properties must hold:
///
/// 1. **No torn generation** — every scan's [`ScanSummary::epochs`]
///    (hit epochs in shard order, consecutive duplicates collapsed) has
///    at most one entry per shard the range crosses. A swap landing
///    mid-shard would surface as two epochs for one shard.
/// 2. **Tail latency survives the swap** — p99 in the swap phase stays
///    within a generous multiple of the quiet-phase p99 (swaps happen on
///    background rebuilds; readers never block on them).
///
/// [`ScanSummary::epochs`]: hope_store::serving::ScanSummary::epochs
#[test]
fn serving_harness_scans_never_observe_a_torn_generation() {
    let n = if cfg!(debug_assertions) { 4_000u64 } else { 16_000 };
    let scans = if cfg!(debug_assertions) { 600usize } else { 2_400 };
    // Explicit swaps only, so the test controls exactly when they land.
    let cfg = StoreConfig { shards: 4, min_observed_bytes: u64::MAX, ..StoreConfig::default() };
    let store = Arc::new(HopeStore::build(cfg, email_pairs(n)).unwrap());
    let serving = ServingConfig {
        workers: 4,
        queue_capacity: 4096,
        batch: 32,
        phases: 2,
        virtual_time: false,
        ..ServingConfig::default()
    };
    let server = Server::start(Arc::clone(&store), serving).expect("start");

    // Each scan anchors at a stride-spread key and runs to the top of the
    // keyspace, so most cross several shards (and many cross all four).
    let scan_at = |i: usize| {
        let lo = format!("com.gmail@user{:06}", (i as u64 * 37) % n).into_bytes();
        Request::scan(lo, b"\xff\xff".to_vec(), 96)
    };
    let check_phase = |tickets: Vec<(usize, hope_store::serving::Ticket<u64>)>, phase: &str| {
        for (i, t) in tickets {
            let lo_shard = match scan_at(i) {
                Request::Scan { ref low, .. } => store.shard_of(low),
                _ => unreachable!(),
            };
            let shards_crossed = (store.config().shards - lo_shard) as usize;
            match t.wait() {
                Response::Scan(summary) => {
                    assert!(summary.hits > 0, "{phase} scan {i} found nothing");
                    assert!(!summary.epochs.is_empty());
                    assert!(
                        summary.epochs.len() <= shards_crossed,
                        "{phase} scan {i} tore a generation: {} epochs across \
                         {shards_crossed} shards ({:?})",
                        summary.epochs.len(),
                        summary.epochs,
                    );
                }
                other => panic!("{phase} scan {i}: {other:?}"),
            }
        }
    };

    // Phase 0: quiet baseline.
    let tickets: Vec<_> =
        (0..scans).map(|i| (i, server.submit(scan_at(i), 0).expect("open"))).collect();
    server.flush();
    check_phase(tickets, "baseline");

    // Phase 1: the same scan stream racing continuous full-store swaps.
    let epochs_before = store.epochs();
    let swapping = Arc::new(AtomicBool::new(true));
    let tickets = std::thread::scope(|s| {
        let swapper = {
            let (store, swapping) = (Arc::clone(&store), Arc::clone(&swapping));
            s.spawn(move || {
                // At least two full rounds even if the scan stream
                // drains first — every shard must swap twice under load.
                let mut swaps = 0u64;
                let mut rounds = 0u32;
                while rounds < 2 || swapping.load(Ordering::Relaxed) {
                    for shard in 0..store.config().shards {
                        store.force_rebuild(shard).expect("rebuild");
                        swaps += 1;
                    }
                    rounds += 1;
                }
                swaps
            })
        };
        let tickets: Vec<_> =
            (0..scans).map(|i| (i, server.submit(scan_at(i), 1).expect("open"))).collect();
        server.flush();
        swapping.store(false, Ordering::Relaxed);
        let swaps = swapper.join().expect("swapper");
        assert!(swaps >= 2 * store.config().shards as u64, "too few swaps to stress: {swaps}");
        tickets
    });
    assert!(
        store.epochs().iter().zip(&epochs_before).all(|(a, b)| a > b),
        "every shard must have swapped during phase 1"
    );
    check_phase(tickets, "swap");

    let report = server.shutdown();
    assert_eq!(report.phases[0].scans, scans as u64);
    assert_eq!(report.phases[1].scans, scans as u64);
    assert_eq!(report.phases[0].errors + report.phases[1].errors, 0);
    // Tail-latency gate: generous (this is correctness CI, not a perf
    // rig), but a reader blocking on a rebuild would blow far past it.
    let p99_quiet = report.phases[0].latency.quantile_ns(0.99).max(1);
    let p99_swap = report.phases[1].latency.quantile_ns(0.99);
    let ratio = p99_swap as f64 / p99_quiet as f64;
    assert!(
        ratio <= 50.0,
        "p99 collapsed during the swap: {p99_quiet}ns quiet vs {p99_swap}ns swapping ({ratio:.1}x)"
    );
}
