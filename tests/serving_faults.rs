//! Integration suite for the serving-side fault-injection layer
//! (`hope_store::serving::faults`): determinism of virtual-time runs
//! under an active plan, the degraded-mode shed hook, wall-mode stalls
//! vs the exactly-once completion guarantee, and config validation —
//! plus the adaptive-admission variants: the controller against a
//! fully-degraded worker, against a wall-mode stall storm, and against
//! mid-drill rebuild failures, each holding exactly-once and full
//! telemetry attribution of every controller decision.

use std::sync::Arc;

use hope_store::serving::{
    AdmissionConfig, FaultPlan, Request, Response, Server, ServingConfig, ServingReport,
};
use hope_store::telemetry::EventKind;
use hope_store::{HopeStore, StoreConfig, StoreError};

fn store(n: u64) -> Arc<HopeStore<u64>> {
    let pairs = (0..n).map(|i| (format!("com.gmail@user{i:06}").into_bytes(), i));
    Arc::new(
        HopeStore::build(
            StoreConfig { min_observed_bytes: u64::MAX, ..StoreConfig::default() },
            pairs,
        )
        .expect("store build"),
    )
}

/// A fixed three-phase op stream: gets, inserts and scans spread over
/// the keyspace, submitted in one thread so admission indices equal
/// stream positions.
fn drive(server: &Server<u64>, n: u64, ops: usize) -> u64 {
    for i in 0..ops {
        let phase = i * 3 / ops;
        let k = format!("com.gmail@user{:06}", (i as u64 * 131) % n).into_bytes();
        match i % 10 {
            0..=6 => server.submit_detached(Request::get(k), phase).expect("open"),
            7 | 8 => server.submit_detached(Request::insert(k, i as u64), phase).expect("open"),
            _ => {
                let mut high = k.clone();
                high.push(0xFF);
                server.submit_detached(Request::scan(k, high, 8), phase).expect("open")
            }
        }
    }
    server.flush();
    ops as u64
}

fn observe(r: &ServingReport) -> Vec<(u64, u64, u64, u64, u64, u64)> {
    let mut rows = Vec::new();
    for p in &r.phases {
        let (p50, p99, p999) = p.latency.slo_points();
        rows.push((p.ops, p.gets + p.inserts + p.scans, p.errors, p50, p99, p999));
    }
    for w in &r.worker_stats {
        let (p50, p99, p999) = w.latency.slo_points();
        rows.push((w.ops, w.faults.total(), u64::from(w.degraded), p50, p99, p999));
    }
    rows.push((r.rerouted, r.total_ops(), r.total_rejected(), 0, 0, 0));
    rows
}

fn exercised_plan() -> FaultPlan {
    FaultPlan {
        seed: 99,
        degraded_worker: Some(1),
        slow_factor: 10,
        stall_every: 50,
        stall_ns: 40_000,
        spike_every: 400,
        spike_ns: 5_000,
        burst_every: 512,
        burst_len: 16,
        burst_ns: 2_000,
        shed_pct: 60,
        rebuild_fail_every: 0,
        phase_mask: u16::MAX,
    }
}

/// Two virtual-time runs over the same op stream and plan are
/// observably identical: per-phase stats, per-worker stats, fault
/// tallies, shed counts — everything the fig20 DIGEST is built from.
#[test]
fn virtual_runs_with_faults_are_deterministic() {
    let n = 4_000u64;
    let cfg = ServingConfig {
        workers: 4,
        phases: 3,
        virtual_time: true,
        faults: Some(exercised_plan()),
        ..ServingConfig::default()
    };
    let run = || {
        let server = Server::start(store(n), cfg).expect("start");
        let submitted = drive(&server, n, 6_000);
        let report = server.shutdown();
        assert_eq!(report.total_ops(), submitted);
        observe(&report)
    };
    assert_eq!(run(), run(), "two identical virtual runs diverged");
}

/// `shed_pct: 100` starves the degraded worker completely: with every
/// phase active, all of its would-be traffic lands on healthy peers,
/// and the shed is mirrored in `rerouted` and the degraded worker's
/// zero op count.
#[test]
fn full_shed_starves_the_degraded_worker() {
    let n = 4_000u64;
    let plan = FaultPlan { shed_pct: 100, ..exercised_plan() };
    let cfg = ServingConfig {
        workers: 4,
        phases: 3,
        virtual_time: true,
        faults: Some(plan),
        ..ServingConfig::default()
    };
    let server = Server::start(store(n), cfg).expect("start");
    assert!(server.is_degraded(1) && !server.is_degraded(0));
    let submitted = drive(&server, n, 4_000);
    let report = server.shutdown();
    assert_eq!(report.total_ops(), submitted);
    let sick = &report.worker_stats[1];
    assert!(sick.degraded);
    assert_eq!(sick.ops, 0, "full shed must starve the sick worker");
    assert!(report.rerouted > 0, "shed traffic must be counted");
    assert_eq!(
        report.telemetry.counter("serving.fault.rerouted"),
        Some(report.rerouted),
        "rerouted counter must mirror the report"
    );
    // Everything still completed exactly once, just elsewhere.
    assert_eq!(report.worker_stats.iter().map(|w| w.ops).sum::<u64>(), submitted);
}

/// With no shedding, the degraded worker keeps its traffic and its
/// virtual latencies show the 10× slow factor: its p50 is an order of
/// magnitude above any healthy worker's.
#[test]
fn slow_factor_shows_up_in_the_degraded_tail() {
    let n = 4_000u64;
    let plan = FaultPlan {
        shed_pct: 0,
        stall_every: 0,
        spike_every: 0,
        burst_every: 0,
        ..exercised_plan()
    };
    let cfg = ServingConfig {
        workers: 4,
        phases: 3,
        virtual_time: true,
        faults: Some(plan),
        ..ServingConfig::default()
    };
    let server = Server::start(store(n), cfg).expect("start");
    let submitted = drive(&server, n, 4_000);
    let report = server.shutdown();
    assert_eq!(report.total_ops(), submitted);
    assert_eq!(report.rerouted, 0);
    let sick = &report.worker_stats[1];
    assert!(sick.ops > 0, "no shed: the sick worker must keep its traffic");
    assert_eq!(sick.faults.slowed, sick.ops, "every sick-worker request pays the factor");
    let sick_p50 = sick.latency.quantile_ns(0.50);
    for w in report.worker_stats.iter().filter(|w| !w.degraded) {
        if w.ops == 0 {
            continue;
        }
        let healthy_p50 = w.latency.quantile_ns(0.50).max(1);
        let ratio = sick_p50 as f64 / healthy_p50 as f64;
        assert!(
            (5.0..=20.0).contains(&ratio),
            "slow factor 10 not visible: sick p50 {sick_p50}ns vs healthy {healthy_p50}ns"
        );
    }
}

/// Wall-mode stalls on the sick worker must not break exactly-once
/// completion: every ticketed request resolves, nothing is rejected,
/// and the stall tally shows the injections really happened.
#[test]
fn wall_mode_stalls_do_not_lose_tickets() {
    let n = 2_000u64;
    let plan = FaultPlan {
        seed: 7,
        degraded_worker: Some(1),
        slow_factor: 2,
        stall_every: 8,
        stall_ns: 2_000_000, // 2 ms: long enough to really wait, short enough for CI
        spike_every: 0,
        burst_every: 0,
        shed_pct: 0,
        rebuild_fail_every: 0,
        phase_mask: u16::MAX,
        ..FaultPlan::default()
    };
    let cfg = ServingConfig {
        workers: 2,
        phases: 1,
        virtual_time: false,
        faults: Some(plan),
        ..ServingConfig::default()
    };
    let server = Server::start(store(n), cfg).expect("start");
    let ops = 600usize;
    let tickets: Vec<_> = (0..ops)
        .map(|i| {
            let k = format!("com.gmail@user{:06}", (i as u64 * 17) % n).into_bytes();
            server.submit(Request::get(k), 0).expect("open")
        })
        .collect();
    server.flush();
    let mut resolved = 0u64;
    for t in tickets {
        assert!(t.is_done(), "a ticket was lost under injected stalls");
        match t.wait() {
            Response::Get(Some(_)) => resolved += 1,
            other => panic!("wrong response under stalls: {other:?}"),
        }
    }
    assert_eq!(resolved, ops as u64);
    let report = server.shutdown();
    assert_eq!(report.total_ops(), ops as u64);
    assert_eq!(report.total_rejected(), 0);
    let stalled: u64 = report.worker_stats.iter().map(|w| w.faults.stalled).sum();
    assert!(stalled > 0, "the plan must actually have stalled something");
    assert_eq!(
        report.telemetry.counter("serving.fault.stalled"),
        Some(stalled),
        "stall counter must mirror the tallies"
    );
}

/// Assert the full attribution chain for a controller-on run: the
/// report, the `serving.admission.*` counters, the per-queue `shed_away`
/// tallies and the event log must all tell the same story, and no
/// request may have been rerouted by both mechanisms.
fn assert_admission_attribution(report: &ServingReport) {
    let adm = report.admission.as_ref().expect("controller-on run must report");
    assert_eq!(
        report.telemetry.counter("serving.admission.shed"),
        Some(adm.shed),
        "shed counter must mirror the report"
    );
    assert_eq!(
        report.telemetry.counter("serving.admission.engage"),
        Some(adm.engages()),
        "engage counter must mirror the decisions"
    );
    assert_eq!(
        report.telemetry.counter("serving.admission.release"),
        Some(adm.releases()),
        "release counter must mirror the decisions"
    );
    assert_eq!(
        report.queues.iter().map(|q| q.shed_away).sum::<u64>(),
        adm.shed,
        "per-queue shed_away tallies must sum to the shed count"
    );
    // Every decision is attributed in the event log, field for field
    // (shard=worker, prev_epoch/epoch=levels, keys=window, bytes=ratio),
    // in decision order.
    let events: Vec<_> = report
        .telemetry
        .events_of(EventKind::AdmissionEngage)
        .chain(report.telemetry.events_of(EventKind::AdmissionRelease))
        .collect();
    assert_eq!(events.len(), adm.decisions.len(), "every decision must be logged");
    let mut logged: Vec<_> = events
        .iter()
        .map(|e| (e.keys, e.shard as usize, e.prev_epoch as u8, e.epoch as u8, e.bytes))
        .collect();
    logged.sort_unstable();
    let mut decided: Vec<_> = adm
        .decisions
        .iter()
        .map(|d| (d.window, d.worker, d.from_pct, d.to_pct, d.ratio_x1000))
        .collect();
    decided.sort_unstable();
    assert_eq!(logged, decided, "event fields must match the decisions");
}

/// The controller against the fig20 sickness at full strength, with no
/// plan-driven shedding to lean on: it must engage on the sick worker,
/// shed real traffic to healthy peers, keep every request exactly-once
/// — and every decision must be attributable through the telemetry.
#[test]
fn controller_sheds_a_fully_degraded_worker_exactly_once() {
    let n = 4_000u64;
    let plan = FaultPlan { shed_pct: 0, ..exercised_plan() };
    let admission =
        AdmissionConfig { window: 256, min_window_ops: 16, seed: 99, ..AdmissionConfig::default() };
    let cfg = ServingConfig {
        workers: 4,
        phases: 3,
        virtual_time: true,
        faults: Some(plan),
        admission: Some(admission),
        ..ServingConfig::default()
    };
    let server = Server::start(store(n), cfg).expect("start");
    let submitted = drive(&server, n, 6_000);
    let report = server.shutdown();

    assert_eq!(report.total_ops(), submitted);
    assert_eq!(report.total_rejected(), 0);
    assert_eq!(report.rerouted, 0, "plan shed is off: only the controller may reroute");

    let adm = report.admission.as_ref().unwrap();
    assert!(
        adm.decisions.iter().any(|d| d.is_engage() && d.worker == 1),
        "controller never engaged on the sick worker: {:?}",
        adm.decisions
    );
    assert!(adm.shed > 0, "an engaged controller must shed traffic");
    // The shed cap keeps probe traffic flowing to the sick worker, and
    // shed requests complete on healthy peers — nothing is dropped.
    assert!(report.worker_stats[1].ops > 0, "capped shed must leave probe traffic");
    assert_eq!(report.worker_stats.iter().map(|w| w.ops).sum::<u64>(), submitted);
    assert_admission_attribution(&report);

    // The whole drill is deterministic: a second identical run agrees
    // decision for decision.
    let server = Server::start(store(n), cfg).expect("start");
    drive(&server, n, 6_000);
    let again = server.shutdown();
    assert_eq!(again.admission.as_ref().unwrap(), adm);
    assert_eq!(observe(&again), observe(&report));
}

/// A wall-clock stall storm with the controller in the loop: real
/// multi-millisecond stalls, real thread timing. Engagement is up to
/// the machine, but exactly-once completion and attribution are not.
#[test]
fn wall_mode_stall_storm_with_controller_keeps_exactly_once() {
    let n = 2_000u64;
    let plan = FaultPlan {
        seed: 7,
        degraded_worker: Some(1),
        slow_factor: 2,
        stall_every: 8,
        stall_ns: 2_000_000,
        spike_every: 0,
        burst_every: 0,
        shed_pct: 0,
        rebuild_fail_every: 0,
        phase_mask: u16::MAX,
        ..FaultPlan::default()
    };
    let admission =
        AdmissionConfig { window: 128, min_window_ops: 8, seed: 7, ..AdmissionConfig::default() };
    let cfg = ServingConfig {
        workers: 2,
        phases: 1,
        virtual_time: false,
        faults: Some(plan),
        admission: Some(admission),
        ..ServingConfig::default()
    };
    let server = Server::start(store(n), cfg).expect("start");
    let ops = 600usize;
    let tickets: Vec<_> = (0..ops)
        .map(|i| {
            let k = format!("com.gmail@user{:06}", (i as u64 * 17) % n).into_bytes();
            server.submit(Request::get(k), 0).expect("open")
        })
        .collect();
    server.flush();
    for t in &tickets {
        assert!(t.is_done(), "a ticket was lost under stalls with the controller on");
    }
    let report = server.shutdown();
    assert_eq!(report.total_ops(), ops as u64);
    assert_eq!(report.total_rejected(), 0);
    assert_eq!(report.rerouted, 0);
    assert!(report.worker_stats.iter().map(|w| w.faults.stalled).sum::<u64>() > 0);
    assert_admission_attribution(&report);
}

/// Mid-drill rebuild failures must not disturb the admission loop: the
/// serving path keeps exactly-once while `maintain()` takes injected
/// failures and heals on retry, and the controller's accounting stays
/// fully attributed throughout.
#[test]
fn rebuild_failures_mid_drill_leave_the_controller_consistent() {
    use hope_bench::harness::{build_serving_store, phase_bounds, serving_config, to_request};
    use hope_workloads::{MixedWorkload, TrafficSpec};

    let workload = MixedWorkload::generate(4_000, 6_000, TrafficSpec::default(), 42);
    let plan = FaultPlan {
        seed: 42,
        degraded_worker: Some(1),
        slow_factor: 10,
        stall_every: 97,
        stall_ns: 50_000,
        shed_pct: 0,
        rebuild_fail_every: 2,
        phase_mask: u16::MAX,
        ..FaultPlan::default()
    };
    let store = build_serving_store(&workload);
    store.inject_faults(plan);
    let serving = ServingConfig {
        faults: Some(plan),
        admission: Some(AdmissionConfig::quick(42)),
        ..serving_config(true)
    };
    let server = Server::start(Arc::clone(&store), serving).expect("start");

    let mut submitted = 0u64;
    let mut injected = 0u64;
    let mut healed = false;
    for (phase, &(lo, hi)) in phase_bounds(&workload).iter().enumerate() {
        for op in &workload.ops[lo..hi] {
            server.submit_detached(to_request(op), phase).expect("open");
        }
        server.flush();
        submitted += (hi - lo) as u64;
        if phase == 0 {
            continue;
        }
        // Maintenance under live traffic: `rebuild_fail_every: 2` fails
        // every other attempt, so a bounded retry loop must land clean.
        for _ in 0..4 {
            let (_, errors) = store.maintain();
            healed = errors.is_empty();
            for (shard, e) in errors {
                assert!(
                    matches!(e, StoreError::FaultInjected { .. }),
                    "real rebuild error on shard {shard}: {e}"
                );
                injected += 1;
            }
            if healed {
                break;
            }
        }
    }
    assert!(injected > 0, "the plan must actually have failed a rebuild");
    assert!(healed, "rebuilds must heal on retry");
    assert_eq!(
        store.telemetry().counter("store.faults.injected_rebuild_failures"),
        Some(injected),
        "injected-failure counter must mirror the observed errors"
    );

    let report = server.shutdown();
    assert_eq!(report.total_ops(), submitted);
    assert_eq!(report.total_rejected(), 0);
    let adm = report.admission.as_ref().unwrap();
    assert!(
        adm.decisions.iter().any(|d| d.is_engage() && d.worker == 1),
        "controller must still engage under maintenance churn"
    );
    assert_admission_attribution(&report);
}

/// `Server::start` rejects nonsensical plans up front.
#[test]
fn invalid_fault_plans_are_rejected_at_start() {
    let s = store(100);
    let base = ServingConfig { workers: 2, ..ServingConfig::default() };
    let cases = [
        FaultPlan { degraded_worker: Some(2), ..FaultPlan::default() }, // no such worker
        FaultPlan { slow_factor: 0, ..FaultPlan::default() },
        FaultPlan { shed_pct: 101, ..FaultPlan::default() },
    ];
    for plan in cases {
        let cfg = ServingConfig { faults: Some(plan), ..base };
        match Server::start(Arc::clone(&s), cfg) {
            Err(StoreError::InvalidConfig { .. }) => {}
            other => panic!("plan {plan} accepted: {other:?}"),
        }
    }
    // A valid plan (and no plan at all) still starts.
    for faults in [None, Some(exercised_plan())] {
        let cfg = ServingConfig { workers: 2, faults, ..ServingConfig::default() };
        drop(Server::start(Arc::clone(&s), cfg).expect("valid config"));
    }
}
