//! Miniature YCSB runs through the full stack (workload generator → HOPE →
//! tree), validated against a `BTreeMap` ground truth.

use std::collections::BTreeMap;

use hope::{HopeBuilder, Scheme};
use hope_workloads::{generate, sample_keys, Dataset, Op, WorkloadSpec, YcsbWorkload};

#[test]
fn workload_c_returns_correct_values_on_all_trees() {
    let keys = generate(Dataset::Email, 2000, 11);
    let sample = sample_keys(&keys, 20.0, 1);
    let hope = HopeBuilder::new(Scheme::DoubleChar)
        .build_from_sample(sample.iter().cloned())
        .expect("build");
    let w = YcsbWorkload::generate(WorkloadSpec::C, keys.len(), 3000, 2);

    let enc: Vec<Vec<u8>> = keys.iter().map(|k| hope.encode(k).into_bytes()).collect();

    let mut art = hope_art::Art::new();
    let mut hot = hope_hot::Hot::new();
    let mut bt = hope_btree::BPlusTree::plain();
    let mut pbt = hope_btree::BPlusTree::prefix();
    for (i, e) in enc.iter().enumerate().take(w.load_count) {
        art.insert(e, i as u64);
        hot.insert(e, i as u64);
        bt.insert(e, i as u64);
        pbt.insert(e, i as u64);
    }
    for op in &w.ops {
        let Op::Read(i) = op else { panic!("workload C is reads only") };
        let q = hope.encode(&keys[*i]);
        let want = Some(*i as u64);
        assert_eq!(art.get(q.as_bytes()), want, "ART");
        assert_eq!(hot.get(q.as_bytes()), want, "HOT");
        assert_eq!(bt.get(q.as_bytes()), want, "B+tree");
        assert_eq!(pbt.get(q.as_bytes()), want, "Prefix B+tree");
    }
}

#[test]
fn workload_e_scans_and_inserts_match_model() {
    let keys = generate(Dataset::Url, 1500, 13);
    let sample = sample_keys(&keys, 20.0, 2);
    let hope = HopeBuilder::new(Scheme::ThreeGrams)
        .dictionary_entries(1 << 12)
        .build_from_sample(sample.iter().cloned())
        .expect("build");
    let w = YcsbWorkload::generate(WorkloadSpec::E, keys.len(), 800, 3);

    let enc: Vec<Vec<u8>> = keys.iter().map(|k| hope.encode(k).into_bytes()).collect();
    let mut tree = hope_art::Art::new();
    let mut model: BTreeMap<Vec<u8>, u64> = BTreeMap::new();
    for (i, e) in enc.iter().enumerate().take(w.load_count) {
        tree.insert(e, i as u64);
        model.insert(e.clone(), i as u64);
    }
    for op in &w.ops {
        match op {
            Op::Scan(idx, len) => {
                let start = &enc[*idx];
                let want: Vec<u64> =
                    model.range(start.clone()..).take(*len).map(|(_, v)| *v).collect();
                assert_eq!(tree.scan(start, *len), want);
            }
            Op::Insert(idx) => {
                tree.insert(&enc[*idx], *idx as u64);
                model.insert(enc[*idx].clone(), *idx as u64);
            }
            Op::Read(_) => unreachable!(),
        }
    }
    assert_eq!(tree.len(), model.len());
}

#[test]
fn surf_filter_under_workload_c_has_no_false_negatives() {
    let keys = generate(Dataset::Wiki, 2000, 17);
    let sample = sample_keys(&keys, 20.0, 4);
    for scheme in Scheme::ALL {
        let hope = HopeBuilder::new(scheme)
            .dictionary_entries(1 << 12)
            .build_from_sample(sample.iter().cloned())
            .expect("build");
        let mut enc: Vec<Vec<u8>> = keys.iter().map(|k| hope.encode(k).into_bytes()).collect();
        enc.sort_unstable();
        enc.dedup();
        let surf = hope_surf::Surf::build(&enc, hope_surf::SuffixKind::Real);
        let w = YcsbWorkload::generate(WorkloadSpec::C, keys.len(), 2000, 5);
        for op in &w.ops {
            let Op::Read(i) = op else { unreachable!() };
            let q = hope.encode(&keys[*i]);
            assert!(surf.contains(q.as_bytes()), "{scheme}: false negative");
        }
    }
}
