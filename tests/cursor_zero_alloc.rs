//! v1 acceptance: the `RangeCursor` scan paths perform **zero per-hit
//! heap allocations**. A counting global allocator measures whole scans:
//! allocation counts must stay a small per-scan constant (cursor
//! construction owns its bounds; pull mode owns its chunk buffers) and
//! must not scale with the number of hits.
//!
//! This file holds a single `#[test]` so the test harness cannot run a
//! neighbour concurrently and pollute the global counter.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use hope_store::{HopeStore, StoreConfig};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates verbatim to the system allocator; the counter is a
// relaxed atomic with no other side effects.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

fn allocs_during(f: impl FnOnce()) -> u64 {
    let before = ALLOCS.load(Ordering::Relaxed);
    f();
    ALLOCS.load(Ordering::Relaxed) - before
}

#[test]
fn cursor_scans_allocate_per_scan_constants_not_per_hit() {
    let pairs = (0..20_000u64).map(|i| (format!("com.gmail@user{i:06}").into_bytes(), i));
    let store = HopeStore::build(StoreConfig::default(), pairs).unwrap();
    let low = b"com.gmail@user000100".as_slice();
    let big_high = b"com.gmail@user018100".as_slice();
    let small_high = b"com.gmail@user000200".as_slice();

    // Warm-up: grows the probe thread-locals and the allocator's caches.
    let warm = |limit: usize, high: &[u8]| {
        let mut n = 0usize;
        store.range_with(low, high, limit, |_, _| n += 1).unwrap();
        let mut cur = store.cursor(low, high, limit).unwrap();
        while cur.next_hit().is_some() {
            n += 1;
        }
        n
    };
    warm(20_000, big_high);

    // Push scan (`range_with` = the cursor's push engine over borrowed
    // bounds): hits are borrowed straight from the shard engine — zero
    // heap allocations once the probe thread-locals are warm.
    let mut hits_small = 0usize;
    let a_small = allocs_during(|| {
        hits_small = store.range_with(low, small_high, 20_000, |_, _| {}).unwrap();
    });
    let mut hits_big = 0usize;
    let a_big = allocs_during(|| {
        hits_big = store.range_with(low, big_high, 20_000, |_, _| {}).unwrap();
    });
    assert_eq!(hits_small, 101);
    assert_eq!(hits_big, 18_001);
    assert_eq!(a_small, 0, "push scan of {hits_small} hits allocated {a_small} times");
    assert_eq!(a_big, 0, "push scan of {hits_big} hits allocated {a_big} times");
    assert_eq!(
        a_small, a_big,
        "push-scan allocations must not scale with hit count \
         ({hits_small} hits: {a_small}, {hits_big} hits: {a_big})"
    );

    // Pull scan: the cursor owns chunk buffers; they may grow once per
    // cursor, but serving 180x more hits must not allocate per hit.
    let pull = |high: &[u8]| {
        let mut hits = 0usize;
        let allocs = allocs_during(|| {
            let mut cur = store.cursor(low, high, 20_000).unwrap();
            while cur.next_hit().is_some() {
                hits += 1;
            }
        });
        (hits, allocs)
    };
    let (h_small, p_small) = pull(small_high);
    let (h_big, p_big) = pull(big_high);
    assert_eq!((h_small, h_big), (101, 18_001));
    assert!(p_small <= 64, "pull scan of {h_small} hits allocated {p_small} times");
    assert!(p_big <= 64, "pull scan of {h_big} hits allocated {p_big} times");
    assert!(
        p_big <= p_small + 48,
        "pull-scan allocations scaled with hits ({h_small}: {p_small}, {h_big}: {p_big})"
    );
}
