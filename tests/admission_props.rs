//! Property suite for [`hope_store::serving::AdmissionController`] — the
//! closed-loop admission policy behind `fig21_adaptive_slo`.
//!
//! Three behavioural claims, attacked with random window scripts:
//!
//! * **determinism** — two controllers fed byte-identical observation
//!   and probe schedules emit byte-identical decision sequences, shed
//!   verdicts, and reports, whatever the script. This is the contract
//!   the `--quick` virtual drills rest on;
//! * **shedding is monotone in sustained degradation** — more
//!   consecutive sick windows can only raise the shed level, and every
//!   request a lightly-engaged controller sheds is also shed by a more
//!   heavily engaged one (the per-request draw is a fixed hash compared
//!   against the level);
//! * **hysteresis forbids oscillation** — consecutive decisions for the
//!   same worker are always at least `min(engage_after,
//!   disengage_after)` windows apart, because each transition resets the
//!   evidence streaks. A flapping controller would shed and unshed the
//!   same traffic on alternating windows; this property pins that off.

use hope_store::serving::{AdmissionConfig, AdmissionController, AdmissionDecision};
use proptest::collection::vec;
use proptest::prelude::*;

const WORKERS: usize = 4;
const SICK: usize = 1;

/// Per-window latency the sick worker reports: `0` marks a thin window
/// (too few samples to be evidence either way).
const HEALTHY_NS: u64 = 1_000;
const SICK_NS: u64 = 20_000;
const THIN: u64 = 0;

fn cfg(window: u64, seed: u64) -> AdmissionConfig {
    AdmissionConfig { window, min_window_ops: 8, seed, ..AdmissionConfig::default() }
}

/// Map raw draws onto a window script: thin / healthy / sick.
fn script(raw: Vec<u64>) -> Vec<u64> {
    raw.into_iter()
        .map(|r| match r % 3 {
            0 => THIN,
            1 => HEALTHY_NS,
            _ => SICK_NS,
        })
        .collect()
}

/// Drive the controller through the scripted windows: 16 samples per
/// worker per window (thin windows get 2, below `min_window_ops`),
/// advancing the admission clock as a single producer would. Returns
/// every decision the seals emitted.
fn drive(ctl: &mut AdmissionController, plan: &[u64], window: u64) -> Vec<AdmissionDecision> {
    let mut decisions = Vec::new();
    for (w, &sick_ns) in plan.iter().enumerate() {
        let base = w as u64 * window;
        let per = if sick_ns == THIN { 2 } else { 16 };
        for s in 0..per {
            decisions.extend(ctl.advance(base + s * window / per));
            for worker in 0..WORKERS {
                let ns = if worker == SICK && sick_ns != THIN { sick_ns } else { HEALTHY_NS };
                ctl.observe(worker, ns);
            }
        }
    }
    // Seal the script's last window.
    decisions.extend(ctl.advance(plan.len() as u64 * window));
    decisions
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn identical_inputs_produce_identical_decisions_and_sheds(
        raw in vec(any::<u64>(), 4..40),
        wexp in 0u64..3,
        seed in any::<u64>(),
    ) {
        let window = 64u64 << wexp;
        let plan = script(raw);
        let c = cfg(window, seed);
        let mut a = AdmissionController::new(c, WORKERS).unwrap();
        let mut b = AdmissionController::new(c, WORKERS).unwrap();
        let da = drive(&mut a, &plan, window);
        let db = drive(&mut b, &plan, window);
        prop_assert_eq!(&da, &db);

        // Probe the shed path over a window of fresh indices: the
        // verdicts (shed or not, and the reroute target) must agree
        // index by index.
        let base = plan.len() as u64 * window;
        for i in base..base + window {
            prop_assert_eq!(a.shed(SICK, i), b.shed(SICK, i));
        }
        prop_assert_eq!(a.report(), b.report());

        // Levels only ever sit on multiples of the step, within the cap.
        for w in 0..WORKERS {
            let l = a.level_pct(w);
            prop_assert!(l <= c.max_shed_pct && l.is_multiple_of(c.shed_step_pct), "level {l}");
        }
    }

    #[test]
    fn shedding_is_monotone_in_sustained_degradation(
        k1 in 0usize..20,
        extra in 0usize..20,
        wexp in 0u64..3,
        seed in any::<u64>(),
    ) {
        let window = 64u64 << wexp;
        let k2 = k1 + extra;
        let c = cfg(window, seed);
        let mut a = AdmissionController::new(c, WORKERS).unwrap();
        let mut b = AdmissionController::new(c, WORKERS).unwrap();
        drive(&mut a, &vec![SICK_NS; k1], window);
        drive(&mut b, &vec![SICK_NS; k2], window);

        // More sustained sickness ⇒ an equal or higher shed level.
        prop_assert!(a.level_pct(SICK) <= b.level_pct(SICK));

        // And the shed sets are nested: the draw is a pure hash of
        // (seed, worker, index) compared against the level, so every
        // index the lower level sheds, the higher level sheds too.
        let base = k2 as u64 * window;
        for i in base..base + 2 * window {
            if a.shed(SICK, i).is_some() {
                prop_assert!(b.shed(SICK, i).is_some(), "index {i} shed at lower level only");
            }
        }
    }

    #[test]
    fn hysteresis_keeps_consecutive_decisions_apart(
        raw in vec(any::<u64>(), 4..60),
        wexp in 0u64..3,
        seed in any::<u64>(),
    ) {
        let window = 64u64 << wexp;
        let plan = script(raw);
        let c = cfg(window, seed);
        let mut ctl = AdmissionController::new(c, WORKERS).unwrap();
        let decisions = drive(&mut ctl, &plan, window);

        let gap = u64::from(c.engage_after.min(c.disengage_after));
        for worker in 0..WORKERS {
            let windows: Vec<u64> =
                decisions.iter().filter(|d| d.worker == worker).map(|d| d.window).collect();
            for pair in windows.windows(2) {
                prop_assert!(
                    pair[1] - pair[0] >= gap,
                    "worker {worker} decided at windows {} and {} (streaks reset to {gap})",
                    pair[0],
                    pair[1]
                );
            }
        }
    }
}
