//! End-to-end order preservation: for every scheme and every search tree,
//! inserting HOPE-encoded keys and scanning must return values in exactly
//! the same order as the raw-key tree — the property (§3.1) that makes
//! range queries on compressed keys meaningful.

use hope::{EncodedKey, HopeBuilder, Scheme};
use hope_workloads::{generate, sample_keys, Dataset};

fn dataset_keys(dataset: Dataset, n: usize) -> Vec<Vec<u8>> {
    generate(dataset, n, 0xDEC0DE)
}

fn build(scheme: Scheme, sample: &[Vec<u8>]) -> hope::Hope {
    HopeBuilder::new(scheme)
        .dictionary_entries(1 << 12)
        .build_from_sample(sample.iter().cloned())
        .expect("build")
}

#[test]
fn encoded_keys_sort_like_source_keys() {
    for dataset in Dataset::ALL {
        let keys = dataset_keys(dataset, 3000);
        let sample = sample_keys(&keys, 10.0, 1);
        for scheme in Scheme::ALL {
            let hope = build(scheme, &sample);
            let mut pairs: Vec<(EncodedKey, &Vec<u8>)> =
                keys.iter().map(|k| (hope.encode(k), k)).collect();
            pairs.sort_by(|a, b| a.0.cmp(&b.0));
            let mut expect: Vec<&Vec<u8>> = keys.iter().collect();
            expect.sort();
            let got: Vec<&Vec<u8>> = pairs.into_iter().map(|(_, k)| k).collect();
            assert_eq!(got, expect, "{dataset}/{scheme}: encoded order diverges");
        }
    }
}

#[test]
fn padded_bytes_are_collision_free_on_all_datasets() {
    // The EncodedKey order uses (bytes, bit_len); trees index the padded
    // bytes alone. Verify the corner case (all-zero extension ties) never
    // occurs on the evaluation datasets.
    for dataset in Dataset::ALL {
        let keys = dataset_keys(dataset, 3000);
        let sample = sample_keys(&keys, 10.0, 2);
        for scheme in Scheme::ALL {
            let hope = build(scheme, &sample);
            let mut seen = std::collections::HashSet::new();
            for k in &keys {
                let e = hope.encode(k).into_bytes();
                assert!(seen.insert(e), "{dataset}/{scheme}: padded collision");
            }
        }
    }
}

#[test]
fn tree_scans_agree_between_raw_and_encoded() {
    let keys = dataset_keys(Dataset::Email, 2000);
    let sample = sample_keys(&keys, 20.0, 3);
    for scheme in [Scheme::DoubleChar, Scheme::ThreeGrams, Scheme::AlmImproved] {
        let hope = build(scheme, &sample);

        // ART
        let mut raw = hope_art::Art::new();
        let mut enc = hope_art::Art::new();
        for (i, k) in keys.iter().enumerate() {
            raw.insert(k, i as u64);
            enc.insert(hope.encode(k).as_bytes(), i as u64);
        }
        for start in keys.iter().step_by(117) {
            let want = raw.scan(start, 20);
            let got = enc.scan(hope.encode(start).as_bytes(), 20);
            assert_eq!(got, want, "{scheme}: ART scan from {start:?}");
        }

        // HOT
        let mut raw = hope_hot::Hot::new();
        let mut enc = hope_hot::Hot::new();
        for (i, k) in keys.iter().enumerate() {
            raw.insert(k, i as u64);
            enc.insert(hope.encode(k).as_bytes(), i as u64);
        }
        for start in keys.iter().step_by(117) {
            assert_eq!(
                enc.scan(hope.encode(start).as_bytes(), 20),
                raw.scan(start, 20),
                "{scheme}: HOT scan"
            );
        }

        // B+trees
        for prefix_mode in [false, true] {
            let mk = || {
                if prefix_mode {
                    hope_btree::BPlusTree::prefix()
                } else {
                    hope_btree::BPlusTree::plain()
                }
            };
            let mut raw = mk();
            let mut enc = mk();
            for (i, k) in keys.iter().enumerate() {
                raw.insert(k, i as u64);
                enc.insert(hope.encode(k).as_bytes(), i as u64);
            }
            for start in keys.iter().step_by(117) {
                assert_eq!(
                    enc.scan(hope.encode(start).as_bytes(), 20),
                    raw.scan(start, 20),
                    "{scheme}: B+tree(prefix={prefix_mode}) scan"
                );
            }
        }
    }
}

#[test]
fn scan_from_unseen_start_keys() {
    // Range starts that were never inserted (the common case in YCSB E).
    let keys = dataset_keys(Dataset::Wiki, 1500);
    let probes = dataset_keys(Dataset::Wiki, 2500);
    let sample = sample_keys(&keys, 20.0, 4);
    let hope = build(Scheme::FourGrams, &sample);

    let mut raw = hope_art::Art::new();
    let mut enc = hope_art::Art::new();
    for (i, k) in keys.iter().enumerate() {
        raw.insert(k, i as u64);
        enc.insert(hope.encode(k).as_bytes(), i as u64);
    }
    for p in probes.iter().step_by(53) {
        let want = raw.scan(p, 10);
        let got = enc.scan(hope.encode(p).as_bytes(), 10);
        assert_eq!(got, want, "scan from unseen {p:?}");
    }
}
