//! Property suite for [`hope_store::serving::metrics::LatencyHistogram`]
//! — the accounting structure every serving SLO gate rests on.
//!
//! Three algebraic claims, attacked with random sample sets:
//!
//! * **merge is associative and commutative**, and any merge order is
//!   observably identical to recording every sample into one histogram —
//!   so per-worker, per-phase sharding of the accounting never changes a
//!   reported quantile;
//! * **quantiles are monotone in `q`** — p999 can never come out below
//!   p99, whatever the distribution;
//! * **the sub-256 ns region records exactly** — one bucket per
//!   nanosecond, so for sample sets entirely below 256 ns every quantile
//!   equals the true order statistic, not a bucket approximation.

use hope_store::serving::metrics::LatencyHistogram;
use proptest::collection::vec;
use proptest::prelude::*;

/// The full observable surface of a histogram, for equality checks
/// (the type deliberately does not expose its buckets).
fn observe(h: &LatencyHistogram) -> (u64, u64, u64, Vec<u64>) {
    let qs = [0.0, 0.01, 0.25, 0.50, 0.75, 0.90, 0.99, 0.999, 1.0];
    (h.count(), h.sum_ns(), h.max_ns(), qs.iter().map(|&q| h.quantile_ns(q)).collect())
}

fn record_all(samples: &[u64]) -> LatencyHistogram {
    let mut h = LatencyHistogram::new();
    for &s in samples {
        h.record(s);
    }
    h
}

/// Spread raw draws across the interesting regions: the exact sub-256 ns
/// buckets, the first octaves, the deep log-linear range, and the
/// saturated tail (the vendored proptest shim has no `prop_oneof`).
fn spread(raw: Vec<u64>) -> Vec<u64> {
    raw.into_iter()
        .map(|r| match r % 4 {
            0 => (r >> 2) % 256,
            1 => 256 + (r >> 2) % 100_000,
            2 => 100_000 + (r >> 2) % 10_000_000_000,
            _ => u64::MAX - (r >> 2) % 1_000,
        })
        .collect()
}

/// Map a raw draw onto a quantile in `[0, 1]`.
fn as_q(raw: u64) -> f64 {
    raw as f64 / u64::MAX as f64
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn merge_is_associative_commutative_and_equals_one_pass(
        raw_a in vec(any::<u64>(), 0..300),
        raw_b in vec(any::<u64>(), 0..300),
        raw_c in vec(any::<u64>(), 0..300),
    ) {
        let (a, b, c) = (spread(raw_a), spread(raw_b), spread(raw_c));
        let (ha, hb, hc) = (record_all(&a), record_all(&b), record_all(&c));

        // (a ⊕ b) ⊕ c
        let mut left = ha.clone();
        left.merge(&hb);
        left.merge(&hc);
        // a ⊕ (b ⊕ c)
        let mut right_inner = hb.clone();
        right_inner.merge(&hc);
        let mut right = ha.clone();
        right.merge(&right_inner);
        // c ⊕ b ⊕ a (commuted)
        let mut commuted = hc.clone();
        commuted.merge(&hb);
        commuted.merge(&ha);
        // every sample through a single histogram
        let mut all = Vec::with_capacity(a.len() + b.len() + c.len());
        all.extend_from_slice(&a);
        all.extend_from_slice(&b);
        all.extend_from_slice(&c);
        let one_pass = record_all(&all);

        let expected = observe(&one_pass);
        prop_assert_eq!(observe(&left), expected.clone());
        prop_assert_eq!(observe(&right), expected.clone());
        prop_assert_eq!(observe(&commuted), expected);
    }

    #[test]
    fn quantiles_are_monotone_in_q(
        raw in vec(any::<u64>(), 0..300),
        raw_qs in vec(any::<u64>(), 2..20),
    ) {
        let h = record_all(&spread(raw));
        let mut qs: Vec<f64> = raw_qs.into_iter().map(as_q).collect();
        qs.sort_by(f64::total_cmp);
        let values: Vec<u64> = qs.iter().map(|&q| h.quantile_ns(q)).collect();
        for w in values.windows(2) {
            prop_assert!(w[0] <= w[1], "quantiles decreased: {:?} over {:?}", values, qs);
        }
        // And every quantile is bounded by the recorded max.
        prop_assert!(values.last().copied().unwrap_or(0) <= h.max_ns());
    }

    #[test]
    fn sub_256ns_region_records_exactly(
        raw in vec(0u64..256, 1..200),
        raw_q in any::<u64>(),
    ) {
        let mut samples = raw;
        let h = record_all(&samples);
        samples.sort_unstable();
        let q = as_q(raw_q);
        // The reported quantile must be the *true* order statistic: rank
        // ceil(q·n) clamped to at least 1, 1-indexed into the sorted set.
        let rank = ((q * samples.len() as f64).ceil() as usize).clamp(1, samples.len());
        prop_assert_eq!(h.quantile_ns(q), samples[rank - 1]);
        // Exactness extends to the aggregates.
        prop_assert_eq!(h.max_ns(), *samples.last().unwrap());
        prop_assert_eq!(h.sum_ns(), samples.iter().sum::<u64>());
        prop_assert_eq!(h.count(), samples.len() as u64);
    }
}
