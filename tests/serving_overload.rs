//! Overload behavior of the serving harness: admission control sheds
//! load at the queue budget, and what it admits it *finishes* — every
//! admitted op completes exactly once, every rejected op is handed back
//! to the caller (never silently dropped), and the store ends up exactly
//! where the admitted writes put it.

use std::collections::BTreeMap;
use std::sync::Arc;

use hope_store::serving::{RejectReason, Request, Response, Server, ServingConfig};
use hope_store::{HopeStore, StoreConfig};

fn store_with(n: u64) -> Arc<HopeStore<u64>> {
    let pairs = (0..n).map(|i| (format!("com.gmail@user{i:05}").into_bytes(), i));
    Arc::new(HopeStore::build(StoreConfig::default(), pairs).expect("build"))
}

/// Many producers hammer tiny queues with `try_submit`: the server must
/// shed (reporting every shed request back), complete every admitted
/// request exactly once, and the final store state must equal a shadow
/// map replay of exactly the admitted writes.
#[test]
fn admission_control_sheds_but_never_drops() {
    let store = store_with(500);
    // Tiny queues + tiny batches against fast producers: rejections are
    // guaranteed at these sizes (asserted below), which is the point.
    let cfg = ServingConfig {
        workers: 2,
        queue_capacity: 8,
        batch: 4,
        phases: 1,
        virtual_time: false,
        ..ServingConfig::default()
    };
    let server = Server::start(Arc::clone(&store), cfg).expect("start");

    let producers = 4;
    let per_producer = if cfg!(debug_assertions) { 1_500 } else { 6_000 };
    // (key, value) pairs admitted, per producer — disjoint key spaces so
    // the shadow merge below is order-independent.
    type ProducerOutcome = (Vec<(Vec<u8>, u64)>, u64);
    let outcome: Vec<ProducerOutcome> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..producers)
            .map(|p| {
                let server = &server;
                s.spawn(move || {
                    let mut admitted = Vec::new();
                    let mut rejected = 0u64;
                    for i in 0..per_producer {
                        let key = format!("org.load@p{p}-{i:06}").into_bytes();
                        let value = ((p as u64) << 32) | i as u64;
                        match server.try_submit_detached(Request::insert(key.clone(), value), 0) {
                            Ok(()) => admitted.push((key, value)),
                            Err(r) => {
                                // The refused request comes back intact.
                                assert_eq!(r.reason, RejectReason::Overloaded);
                                match r.request {
                                    Request::Insert { key: k, value: v } => {
                                        assert_eq!((k, v), (key, value));
                                    }
                                    other => panic!("wrong request returned: {other:?}"),
                                }
                                rejected += 1;
                            }
                        }
                    }
                    (admitted, rejected)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("producer")).collect()
    });

    let report = server.shutdown();

    let admitted_total: u64 = outcome.iter().map(|(a, _)| a.len() as u64).sum();
    let rejected_total: u64 = outcome.iter().map(|(_, r)| *r).sum();
    assert_eq!(admitted_total + rejected_total, (producers * per_producer) as u64);
    assert!(rejected_total > 0, "queues of 8 against 4 fast producers must shed");
    assert!(admitted_total > 0, "some requests must get through");

    // Exactly-once completion: the workers completed precisely the
    // admitted set — shutdown drains queues rather than dropping them.
    assert_eq!(report.total_ops(), admitted_total);
    assert_eq!(report.total_rejected(), rejected_total);
    let queue_admitted: u64 = report.queues.iter().map(|q| q.enqueued).sum();
    assert_eq!(queue_admitted, admitted_total);
    assert_eq!(report.phases[0].inserts, admitted_total);
    assert_eq!(report.phases[0].errors, 0);
    for q in &report.queues {
        assert!(q.peak_depth <= 8, "queue exceeded its admission budget");
    }

    // Shadow-map check: the store holds the original load plus exactly
    // the admitted inserts (producer key spaces are disjoint, so the
    // merge order cannot matter).
    let mut shadow: BTreeMap<Vec<u8>, u64> = BTreeMap::new();
    for i in 0..500u64 {
        shadow.insert(format!("com.gmail@user{i:05}").into_bytes(), i);
    }
    for (admitted, _) in &outcome {
        for (k, v) in admitted {
            shadow.insert(k.clone(), *v);
        }
    }
    assert_eq!(store.len(), shadow.len());
    for (k, v) in &shadow {
        assert_eq!(store.get(k).expect("valid key"), Some(*v), "{}", String::from_utf8_lossy(k));
    }
}

/// Ticketed requests complete exactly once even when the server is shut
/// down with requests still queued: `shutdown` drains, so every ticket
/// resolves.
#[test]
fn shutdown_completes_every_admitted_ticket() {
    let store = store_with(200);
    let cfg = ServingConfig {
        workers: 1,
        queue_capacity: 256,
        batch: 16,
        phases: 1,
        virtual_time: false,
        ..ServingConfig::default()
    };
    let server = Server::start(Arc::clone(&store), cfg).expect("start");
    let tickets: Vec<_> = (0..200u64)
        .map(|i| {
            server
                .submit(Request::get(format!("com.gmail@user{i:05}").into_bytes()), 0)
                .expect("open")
        })
        .collect();
    let report = server.shutdown();
    assert_eq!(report.total_ops(), 200);
    for (i, t) in tickets.into_iter().enumerate() {
        match t.wait() {
            Response::Get(Some(v)) => assert_eq!(v, i as u64),
            other => panic!("ticket {i}: {other:?}"),
        }
    }
}

/// A dropped (not shut down) server closes and joins cleanly, and the
/// store it served stays fully usable by a successor pipeline —
/// ownership makes submitting to a closed `Server` unrepresentable, and
/// the queue-level `Closed` refusal is covered by the module's unit
/// tests.
#[test]
fn dropped_server_closes_cleanly_and_store_survives() {
    let store = store_with(50);
    let server = Server::start(Arc::clone(&store), ServingConfig::default()).expect("start");
    drop(server);
    // A second server on the same store still works (the store outlives
    // any one serving pipeline).
    let server = Server::start(Arc::clone(&store), ServingConfig::default()).expect("start");
    let t = server.submit(Request::get(b"com.gmail@user00007".to_vec()), 0).expect("open");
    assert!(matches!(t.wait(), Response::Get(Some(7))));
    server.shutdown();
}
