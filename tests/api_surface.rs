//! Public-API surface snapshot: the v1 surface of the `hope` and
//! `hope_store` crate roots, asserted against the checked-in expectation
//! file `tests/api_surface.txt`.
//!
//! The goal is that future PRs change the v1 surface *deliberately*: any
//! added, removed or renamed root-level `pub` item (including the
//! `prelude` re-exports) fails this test until the expectation file is
//! regenerated — an explicit, reviewable diff.
//!
//! To regenerate after an intentional change:
//!
//! ```text
//! UPDATE_API_SURFACE=1 cargo test --test api_surface
//! ```
//!
//! Scope: the crate-root `lib.rs` of both crates — `pub use` re-exports
//! (brace lists expanded), `pub mod` declarations, and root-level `pub`
//! type/trait/fn/const declarations. Items declared deeper in module
//! files are reachable only through these roots, so the snapshot pins the
//! names an embedder can actually import.

use std::fmt::Write as _;
use std::path::Path;

/// Extract the public surface of one `lib.rs` source: normalized, sorted
/// entries like `use bitpack::{Code}` → `use bitpack::Code`.
fn surface_of(source: &str, crate_name: &str) -> Vec<String> {
    // Strip line comments (the sources use no block comments in code
    // position) and join the remainder so multi-line items parse.
    let joined: String =
        source.lines().map(|l| l.split("//").next().unwrap_or("")).collect::<Vec<_>>().join("\n");

    let mut out = Vec::new();
    let mut rest: &str = &joined;
    while let Some(at) = rest.find("pub ") {
        // Require a token boundary before `pub` (start, whitespace, or a
        // brace) so `pub` inside an identifier never matches.
        let boundary =
            at == 0 || rest[..at].ends_with(|c: char| c.is_whitespace() || c == '{' || c == '}');
        let tail = &rest[at + 4..];
        rest = tail;
        if !boundary {
            continue;
        }
        let mut words = tail.split_whitespace();
        match words.next() {
            Some("use") => {
                let stmt = tail[3..].split(';').next().unwrap_or("").trim();
                // Expand a single-level brace list: `a::{B, C as D}`.
                if let Some((prefix, list)) = stmt.split_once('{') {
                    let list = list.trim_end_matches('}');
                    for item in list.split(',') {
                        let item = item.trim();
                        if item.is_empty() {
                            continue;
                        }
                        out.push(format!("{crate_name}: use {}{}", prefix.trim(), item));
                    }
                } else {
                    out.push(format!("{crate_name}: use {stmt}"));
                }
            }
            Some(kw @ ("mod" | "struct" | "enum" | "trait" | "fn" | "type" | "const")) => {
                if let Some(name) = words.next() {
                    let name: String =
                        name.chars().take_while(|c| c.is_alphanumeric() || *c == '_').collect();
                    if !name.is_empty() {
                        out.push(format!("{crate_name}: {kw} {name}"));
                    }
                }
            }
            _ => {}
        }
    }
    out.sort();
    out.dedup();
    out
}

#[test]
fn v1_public_surface_matches_the_snapshot() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut actual = Vec::new();
    for (crate_name, lib) in
        [("hope", "crates/core/src/lib.rs"), ("hope_store", "crates/store/src/lib.rs")]
    {
        let src = std::fs::read_to_string(root.join(lib)).expect("crate root readable");
        actual.extend(surface_of(&src, crate_name));
    }
    actual.sort();

    let snapshot_path = root.join("tests/api_surface.txt");
    if std::env::var_os("UPDATE_API_SURFACE").is_some() {
        let mut s = String::from(
            "# v1 public-API surface snapshot (crate roots of `hope` and `hope_store`).\n\
             # Regenerate deliberately with: UPDATE_API_SURFACE=1 cargo test --test api_surface\n",
        );
        for line in &actual {
            writeln!(s, "{line}").unwrap();
        }
        std::fs::write(&snapshot_path, s).expect("write snapshot");
        return;
    }

    let expected_raw = std::fs::read_to_string(&snapshot_path).expect(
        "tests/api_surface.txt missing — generate it with \
         UPDATE_API_SURFACE=1 cargo test --test api_surface",
    );
    let expected: Vec<&str> =
        expected_raw.lines().filter(|l| !l.starts_with('#') && !l.is_empty()).collect();

    let added: Vec<&String> = actual.iter().filter(|a| !expected.contains(&a.as_str())).collect();
    let removed: Vec<&&str> =
        expected.iter().filter(|e| !actual.iter().any(|a| a == **e)).collect();
    assert!(
        added.is_empty() && removed.is_empty(),
        "public API surface changed.\n  added: {added:#?}\n  removed: {removed:#?}\n\
         If intentional, regenerate the snapshot:\n  \
         UPDATE_API_SURFACE=1 cargo test --test api_surface"
    );
}

/// The parser itself is part of the contract; pin its behaviour.
#[test]
fn surface_parser_expands_and_normalizes() {
    let src = "
        pub mod prelude;
        pub use bitpack::{Code, EncodedKey};
        pub use selector::Scheme;
        // pub use commented::Out;
        pub struct Thing<V: Clone = u64> { x: V }
        pub fn free_fn(x: usize) -> usize { x }
        pub(crate) fn hidden() {}
        pub const MAX: usize = 3;
    ";
    let got = surface_of(src, "c");
    assert_eq!(
        got,
        vec![
            "c: const MAX",
            "c: fn free_fn",
            "c: mod prelude",
            "c: struct Thing",
            "c: use bitpack::Code",
            "c: use bitpack::EncodedKey",
            "c: use selector::Scheme",
        ]
    );
}
