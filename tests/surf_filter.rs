//! SuRF-specific integration properties with HOPE-encoded keys: the filter
//! contract (no false negatives, point and range), the Figure 10 height
//! reduction, and the Figure 11 FPR improvement under compression.

use hope::{HopeBuilder, Scheme};
use hope_surf::{SuffixKind, Surf};
use hope_workloads::{generate, sample_keys, Dataset};

fn encoded_sorted(hope: &hope::Hope, keys: &[Vec<u8>]) -> Vec<Vec<u8>> {
    let mut enc: Vec<Vec<u8>> = keys.iter().map(|k| hope.encode(k).into_bytes()).collect();
    enc.sort_unstable();
    enc.dedup();
    enc
}

#[test]
fn no_false_negatives_for_point_and_range_queries() {
    let keys = generate(Dataset::Email, 3000, 61);
    let sample = sample_keys(&keys, 20.0, 1);
    for scheme in Scheme::ALL {
        let hope = HopeBuilder::new(scheme)
            .dictionary_entries(1 << 12)
            .build_from_sample(sample.iter().cloned())
            .expect("build");
        for kind in [SuffixKind::None, SuffixKind::Hash, SuffixKind::Real] {
            let surf = Surf::build(&encoded_sorted(&hope, &keys), kind);
            for k in keys.iter().step_by(7) {
                let e = hope.encode(k);
                assert!(surf.contains(e.as_bytes()), "{scheme}/{kind:?}: point FN");
                // Closed range [k, k+1-last-byte): must report maybe.
                let mut hi = k.clone();
                *hi.last_mut().unwrap() = hi.last().unwrap().saturating_add(1);
                let (lo_e, hi_e) = hope.encode_pair(k, &hi);
                assert!(
                    surf.range_may_contain(lo_e.as_bytes(), hi_e.as_bytes()),
                    "{scheme}/{kind:?}: range FN on [{k:?}, +1)"
                );
            }
        }
    }
}

#[test]
fn compression_reduces_trie_height() {
    // Figure 10, row 3: compressed tries are substantially shorter.
    let keys = generate(Dataset::Email, 4000, 67);
    let sample = sample_keys(&keys, 20.0, 2);
    let mut sorted = keys.clone();
    sorted.sort();
    let raw_height = Surf::build(&sorted, SuffixKind::None).avg_height();
    let hope = HopeBuilder::new(Scheme::DoubleChar)
        .build_from_sample(sample.iter().cloned())
        .expect("build");
    let enc_height = Surf::build(&encoded_sorted(&hope, &keys), SuffixKind::None).avg_height();
    assert!(
        enc_height < raw_height * 0.8,
        "height {raw_height:.2} -> {enc_height:.2}: expected >20% reduction"
    );
}

#[test]
fn compression_lowers_false_positive_rate() {
    // Figure 11: each compressed-key bit carries more information.
    let all = generate(Dataset::Email, 8000, 71);
    let (stored, absent) = all.split_at(4000);
    let sample = sample_keys(stored, 20.0, 3);
    let fpr = |surf: &Surf, enc: &dyn Fn(&[u8]) -> Vec<u8>| {
        let fp = absent.iter().filter(|k| surf.contains(&enc(k))).count();
        fp as f64 / absent.len() as f64
    };

    let mut sorted: Vec<Vec<u8>> = stored.to_vec();
    sorted.sort();
    let raw = Surf::build(&sorted, SuffixKind::None);
    let raw_fpr = fpr(&raw, &|k| k.to_vec());

    let hope = HopeBuilder::new(Scheme::FourGrams)
        .dictionary_entries(1 << 14)
        .build_from_sample(sample.iter().cloned())
        .expect("build");
    let comp = Surf::build(&encoded_sorted(&hope, stored), SuffixKind::None);
    let comp_fpr = fpr(&comp, &|k| hope.encode(k).into_bytes());

    assert!(
        comp_fpr <= raw_fpr + 0.02,
        "FPR should not rise under compression: {raw_fpr:.4} -> {comp_fpr:.4}"
    );
}

#[test]
fn memory_shrinks_with_compression() {
    let keys = generate(Dataset::Url, 4000, 73);
    let sample = sample_keys(&keys, 20.0, 4);
    let mut sorted = keys.clone();
    sorted.sort();
    let raw = Surf::build(&sorted, SuffixKind::Real);
    let hope = HopeBuilder::new(Scheme::DoubleChar)
        .build_from_sample(sample.iter().cloned())
        .expect("build");
    let comp = Surf::build(&encoded_sorted(&hope, &keys), SuffixKind::Real);
    assert!(
        comp.memory_bytes() < raw.memory_bytes(),
        "SuRF memory should shrink: {} -> {}",
        raw.memory_bytes(),
        comp.memory_bytes()
    );
}
