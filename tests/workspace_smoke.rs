//! Workspace smoke tests: every example under `examples/` must keep
//! building (their sources are tracked here; CI builds them with
//! `cargo build --examples`), and the exact API path each example drives
//! must run to completion in-process, so a plain `cargo test` catches a
//! broken example flow without shelling out to cargo.

use hope::{HopeBuilder, Scheme};
use hope_btree::BPlusTree;
use hope_store::{HopeStore, StoreConfig};
use hope_surf::{SuffixKind, Surf};
use hope_workloads::{generate, generate_email_split, sample_keys, Dataset};

/// The five demo examples this workspace ships.
const EXAMPLES: [&str; 5] =
    ["quickstart", "email_index", "range_filter", "compression_explorer", "store_serving"];

#[test]
fn all_examples_are_present() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("examples");
    for name in EXAMPLES {
        let path = dir.join(format!("{name}.rs"));
        assert!(path.is_file(), "missing example source {path:?}");
        let src = std::fs::read_to_string(&path).unwrap();
        assert!(src.contains("fn main()"), "{name}.rs has no main()");
    }
}

/// `examples/quickstart.rs`, end to end: build from a sample, encode keys
/// the sample never saw, check order preservation, decode losslessly.
#[test]
fn quickstart_path_runs_to_completion() {
    let sample: Vec<Vec<u8>> = [
        "com.gmail@alice",
        "com.gmail@bob",
        "com.gmail@carol",
        "com.yahoo@dave",
        "com.yahoo@erin",
        "org.acm@frank",
        "net.github@grace",
        "com.gmail@heidi",
        "com.outlook@ivan",
    ]
    .iter()
    .map(|s| s.as_bytes().to_vec())
    .collect();

    let hope =
        HopeBuilder::new(Scheme::DoubleChar).build_from_sample(sample.clone()).expect("build");
    assert!(hope.dict_entries() > 0);
    assert!(hope.dict_memory_bytes() > 0);

    let keys = [
        "com.gmail@aaron",
        "com.gmail@zoe",
        "com.hotmail@newcomer",
        "org.acm@turing",
        "zz.unseen@pattern",
    ];
    let mut encoded: Vec<_> = keys.iter().map(|k| hope.encode(k.as_bytes())).collect();

    encoded.sort();
    let decoder = hope.decoder();
    let decoded: Vec<String> = encoded
        .iter()
        .map(|e| String::from_utf8(decoder.decode(e).expect("lossless")).expect("utf8"))
        .collect();
    let mut expect: Vec<String> = keys.iter().map(|s| s.to_string()).collect();
    expect.sort();
    assert_eq!(decoded, expect, "order preservation violated");
}

/// `examples/email_index.rs` in miniature: a B+tree over compressed email
/// keys answers every point lookup and range scan correctly.
#[test]
fn email_index_path() {
    let keys = generate(Dataset::Email, 3_000, 7);
    let sample = sample_keys(&keys, 20.0, 1);
    let hope = HopeBuilder::new(Scheme::DoubleChar)
        .dictionary_entries(1 << 16)
        .build_from_sample(sample.iter().cloned())
        .expect("build");

    let mut tree = BPlusTree::plain();
    for (i, k) in keys.iter().enumerate() {
        tree.insert(&hope.encode(k).into_bytes(), i as u64);
    }
    for (i, k) in keys.iter().enumerate().step_by(7) {
        assert_eq!(tree.get(&hope.encode(k).into_bytes()), Some(i as u64));
    }
    let first = keys.iter().enumerate().step_by(31).next().unwrap();
    assert!(!tree.scan(&hope.encode(first.1).into_bytes(), 10).is_empty());
}

/// `examples/range_filter.rs` in miniature: SuRF over compressed URLs has
/// no false negatives on stored keys.
#[test]
fn range_filter_path() {
    let all = generate(Dataset::Url, 2_000, 3);
    let (stored, absent) = all.split_at(1_000);
    let sample = sample_keys(stored, 25.0, 5);
    let hope = HopeBuilder::new(Scheme::FourGrams)
        .dictionary_entries(1 << 14)
        .build_from_sample(sample.iter().cloned())
        .expect("build");

    let mut sorted: Vec<Vec<u8>> = stored.iter().map(|k| hope.encode(k).into_bytes()).collect();
    sorted.sort_unstable();
    sorted.dedup();
    let surf = Surf::build(&sorted, SuffixKind::Real);

    for k in stored {
        assert!(surf.contains(&hope.encode(k).into_bytes()), "false negative");
    }
    // FPR sanity only — rejections must be truly absent.
    let fp = absent.iter().filter(|k| surf.contains(&hope.encode(k).into_bytes())).count();
    assert!(fp < absent.len(), "filter accepts everything");
}

/// `examples/store_serving.rs` in miniature: a sharded store over Email-A
/// keys takes drifting Email-B writes, hot-swaps its dictionaries, and
/// keeps serving every key correctly.
#[test]
fn store_serving_path() {
    let (email_a, email_b) = generate_email_split(8_000, 42);
    let load: Vec<(Vec<u8>, u64)> =
        email_a.iter().take(1_500).enumerate().map(|(i, k)| (k.clone(), i as u64)).collect();
    let cfg = StoreConfig { min_observed_bytes: 2048, ..StoreConfig::default() };
    let store = HopeStore::build(cfg, load.clone()).expect("store build");
    assert_eq!(store.get(&load[7].0).expect("valid key"), Some(7));

    for (i, k) in email_b.iter().take(1_500).enumerate() {
        store.insert(k.clone(), i as u64).expect("valid key");
    }
    let (swaps, errors) = store.maintain();
    assert!(errors.is_empty(), "{errors:?}");
    assert!(!swaps.is_empty(), "drift should trigger a swap");
    assert_eq!(store.get(&load[7].0).expect("valid key"), Some(7));
    assert_eq!(store.len(), 3_000);
    let mut all = Vec::new();
    store.range_into(b"", b"\xff\xff\xff", usize::MAX, &mut all).expect("valid bounds");
    assert_eq!(all.len(), 3_000);
    assert!(all.windows(2).all(|w| w[0].0 < w[1].0));
}

/// `examples/compression_explorer.rs` in miniature: every scheme builds on
/// a word sample and actually compresses it.
#[test]
fn compression_explorer_path() {
    let keys = generate(Dataset::Wiki, 2_000, 11);
    let sample = sample_keys(&keys, 25.0, 2);
    for scheme in Scheme::ALL {
        let hope = HopeBuilder::new(scheme)
            .dictionary_entries(1 << 12)
            .build_from_sample(sample.iter().cloned())
            .unwrap_or_else(|e| panic!("{}: {e:?}", scheme.name()));
        let raw: usize = keys.iter().map(|k| k.len()).sum();
        let comp: usize = keys.iter().map(|k| hope.encode(k).byte_len()).sum();
        assert!(comp > 0, "{}", scheme.name());
        assert!(comp < raw, "{} failed to compress: {comp} >= {raw}", scheme.name());
    }
}
