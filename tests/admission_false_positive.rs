//! The false-positive drill for the adaptive admission controller: the
//! fig18 healthy workload (no fault plan at all) driven twice in
//! deterministic virtual mode — once with the controller off, once with
//! it on. A healthy fleet must give the controller nothing to do:
//!
//! * zero requests shed, zero decisions, every level parked at 0% —
//!   while the controller demonstrably *was* judging (windows sealed);
//! * the `serving.admission.*` counters all read zero;
//! * the serving report is byte-identical to the controller-off run,
//!   modulo the fields the controller itself adds (its report and the
//!   zero-valued `shed_away` queue counters) — observing traffic must
//!   not perturb it.

use hope_bench::harness::{build_serving_store, phase_bounds, serving_config, to_request};
use hope_store::serving::{AdmissionConfig, Server, ServingConfig, ServingReport};
use hope_workloads::{MixedWorkload, TrafficSpec};

/// One virtual-mode pass over the workload with a single producer
/// (admission index == stream position, the determinism contract).
fn run(workload: &MixedWorkload, admission: Option<AdmissionConfig>) -> ServingReport {
    let store = build_serving_store(workload);
    let serving = ServingConfig { admission, ..serving_config(true) };
    let server = Server::start(store, serving).expect("server start");
    for (phase, &(lo, hi)) in phase_bounds(workload).iter().enumerate() {
        for op in &workload.ops[lo..hi] {
            server.submit_detached(to_request(op), phase).expect("server open");
        }
        server.flush();
    }
    server.shutdown()
}

/// Everything the two runs must agree on: per-phase stats, per-worker
/// stats, queue stats. `shed_away` and the admission report are the
/// controller's own additions and are asserted to be zero separately.
fn digest(r: &ServingReport) -> String {
    let mut s = String::new();
    for ph in &r.phases {
        let (p50, p99, p999) = ph.latency.slo_points();
        s.push_str(&format!(
            "phase ops={} gets={} inserts={} scans={} scan_hits={} errors={} \
             p50={p50} p99={p99} p999={p999} mean={:.1} max={}\n",
            ph.ops,
            ph.gets,
            ph.inserts,
            ph.scans,
            ph.scan_hits,
            ph.errors,
            ph.latency.mean_ns(),
            ph.latency.max_ns(),
        ));
    }
    for w in &r.worker_stats {
        let (p50, p99, p999) = w.latency.slo_points();
        s.push_str(&format!(
            "worker {} ops={} degraded={} faults={} p50={p50} p99={p99} p999={p999}\n",
            w.worker,
            w.ops,
            w.degraded,
            w.faults.total(),
        ));
    }
    // Batch counts and peak depths are scheduling artifacts (they vary
    // run to run even without a controller); only the admitted totals
    // are part of the determinism contract.
    for (i, q) in r.queues.iter().enumerate() {
        s.push_str(&format!("queue {i} enqueued={} rejected={}\n", q.enqueued, q.rejected));
    }
    s.push_str(&format!(
        "rerouted={} total={} rejected={}\n",
        r.rerouted,
        r.total_ops(),
        r.total_rejected()
    ));
    s
}

#[test]
fn healthy_traffic_is_never_shed_and_never_perturbed() {
    let workload = MixedWorkload::generate(4_000, 6_000, TrafficSpec::default(), 42);

    let off = run(&workload, None);
    let on = run(&workload, Some(AdmissionConfig::quick(42)));

    // The controller was genuinely in the loop...
    let adm = on.admission.as_ref().expect("controller-on run must report");
    assert!(adm.windows > 0, "no windows sealed: the controller never judged anything");

    // ...and found nothing: no decisions, no shedding, levels parked.
    assert_eq!(adm.decisions, vec![], "healthy run produced decisions");
    assert_eq!(adm.shed, 0, "healthy run shed traffic");
    assert!(adm.levels.iter().all(|&l| l == 0), "levels off zero: {:?}", adm.levels);
    for counter in
        ["serving.admission.shed", "serving.admission.engage", "serving.admission.release"]
    {
        assert_eq!(on.telemetry.counter(counter), Some(0), "{counter} must be zero");
    }
    assert!(on.queues.iter().all(|q| q.shed_away == 0));

    // The controller-off run has no admission report and no shed.
    assert!(off.admission.is_none());
    assert!(off.queues.iter().all(|q| q.shed_away == 0));

    // Observing must not perturb: everything else is byte-identical.
    assert_eq!(digest(&on), digest(&off), "controller-on run diverged from controller-off");
}
