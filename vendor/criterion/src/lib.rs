//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! Implements the subset of criterion 0.5's API that the workspace benches
//! use — `criterion_group!`/`criterion_main!`, [`Criterion`],
//! [`BenchmarkGroup`], [`BenchmarkId`], [`Throughput`] and
//! [`Bencher::iter`] — with a simple wall-clock measurement loop instead of
//! criterion's statistical machinery. Each benchmark runs one warm-up
//! iteration followed by `sample_size` timed iterations and reports the
//! mean and minimum time per iteration (plus throughput when configured).
//!
//! See `vendor/README.md` for how to swap in the real crate when network
//! access is available.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level benchmark driver, a shim for `criterion::Criterion`.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Set the number of timed iterations per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), throughput: None, criterion: self }
    }

    /// Run a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let samples = self.sample_size;
        run_one(&id.into().id, None, samples, f);
        self
    }
}

/// A named collection of benchmarks sharing a throughput setting.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Declare how much work one iteration performs, enabling
    /// elements/sec or bytes/sec reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Override the sample size for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.criterion.sample_size = n;
        self
    }

    /// Time a closure under this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into().id);
        run_one(&full, self.throughput, self.criterion.sample_size, f);
        self
    }

    /// Time a closure that receives an input by reference.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.into().id);
        run_one(&full, self.throughput, self.criterion.sample_size, |b| f(b, input));
        self
    }

    /// Finish the group (a no-op in the shim; kept for API parity).
    pub fn finish(self) {}
}

/// Identifier for one benchmark, a shim for `criterion::BenchmarkId`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A `function_name/parameter` id.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{function_name}/{parameter}") }
    }

    /// An id that is just the parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Work performed per iteration, for derived throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Iteration processes this many bytes.
    Bytes(u64),
    /// Iteration processes this many elements.
    Elements(u64),
}

/// Timer handle passed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    planned: usize,
}

impl Bencher {
    /// Run `f` once for warm-up, then time it `sample_size` times.
    pub fn iter<T>(&mut self, mut f: impl FnMut() -> T) {
        std::hint::black_box(f());
        for _ in 0..self.planned {
            let t = Instant::now();
            std::hint::black_box(f());
            self.samples.push(t.elapsed());
        }
    }

    /// Like [`Bencher::iter`], but `setup` output is rebuilt (untimed)
    /// before every timed call.
    pub fn iter_batched<I, T>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut f: impl FnMut(I) -> T,
        _size: BatchSize,
    ) {
        std::hint::black_box(f(setup()));
        for _ in 0..self.planned {
            let input = setup();
            let t = Instant::now();
            std::hint::black_box(f(input));
            self.samples.push(t.elapsed());
        }
    }
}

/// Batch sizing hint (ignored by the shim; kept for API parity).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

fn run_one<F>(name: &str, throughput: Option<Throughput>, samples: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut b = Bencher { samples: Vec::with_capacity(samples), planned: samples };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{name:<48} (no samples recorded)");
        return;
    }
    let total: Duration = b.samples.iter().sum();
    let mean = total.as_nanos() as f64 / b.samples.len() as f64;
    let min = b.samples.iter().min().unwrap().as_nanos() as f64;
    let rate = match throughput {
        Some(Throughput::Elements(n)) if mean > 0.0 => {
            format!("  {:>12.1} Melem/s", n as f64 / mean * 1e3)
        }
        Some(Throughput::Bytes(n)) if mean > 0.0 => {
            format!("  {:>12.1} MiB/s", n as f64 / mean * 1e9 / (1024.0 * 1024.0))
        }
        _ => String::new(),
    };
    println!("{name:<48} mean {:>12.0} ns  min {:>12.0} ns{rate}", mean, min);
}

/// Shim for `criterion::criterion_group!`: collects target functions into
/// one runner function driven by a configured [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Shim for `criterion::criterion_main!`: generates `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_records_samples() {
        let mut c = Criterion::default().sample_size(3);
        let mut runs = 0usize;
        c.bench_function("smoke", |b| b.iter(|| runs += 1));
        // 1 warm-up + 3 timed iterations.
        assert_eq!(runs, 4);
    }

    #[test]
    fn group_runs_each_bench() {
        let mut c = Criterion::default().sample_size(2);
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Elements(10));
        let mut runs = 0usize;
        group.bench_function(BenchmarkId::from_parameter("x"), |b| b.iter(|| runs += 1));
        group.finish();
        assert_eq!(runs, 3);
    }
}
