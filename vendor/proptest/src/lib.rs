//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! property-testing framework.
//!
//! Implements the subset this workspace's tests use: the [`proptest!`]
//! macro, `prop_assert!`/`prop_assert_eq!`/`prop_assert_ne!`,
//! [`arbitrary::any`], [`collection::vec()`] / [`collection::btree_set`],
//! tuple strategies, and [`test_runner::ProptestConfig::with_cases`].
//!
//! Differences from the real crate: inputs are drawn from a deterministic
//! splitmix64 generator seeded per test name and case index, there is no
//! shrinking (a failing case panics with the assertion message directly),
//! and strategies are sampled eagerly rather than lazily composed.
//!
//! See `vendor/README.md` for how to swap in the real crate when network
//! access is available.

pub mod test_runner {
    //! Test-run configuration and the deterministic RNG behind the shim.

    /// Configuration accepted by `#![proptest_config(..)]`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases each property runs.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// Run each property for `cases` random inputs.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// Deterministic splitmix64 generator; one instance per test case.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed from the fully-qualified test name and the case index, so
        /// every run of the suite replays the same inputs.
        pub fn for_case(test_name: &str, case: u32) -> Self {
            let mut h: u64 = 0xcbf29ce484222325; // FNV-1a
            for b in test_name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
            TestRng { state: h ^ ((case as u64) << 32) ^ 0x9e3779b97f4a7c15 }
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        }

        /// Uniform value in `[lo, hi)`; `hi` must exceed `lo`.
        pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
            assert!(lo < hi, "empty range {lo}..{hi}");
            lo + (self.next_u64() % (hi - lo) as u64) as usize
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait: something that can produce a random value.

    use crate::test_runner::TestRng;

    /// A source of random values of one type. The shim samples eagerly —
    /// no lazy value trees, no shrinking.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;
        /// Draw one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl<A: Strategy, B: Strategy> Strategy for (A, B) {
        type Value = (A::Value, B::Value);
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (self.0.sample(rng), self.1.sample(rng))
        }
    }

    impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
        type Value = (A::Value, B::Value, C::Value);
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (self.0.sample(rng), self.1.sample(rng), self.2.sample(rng))
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {
            $(impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.next_u64() % span) as $t
                }
            })*
        };
    }
    range_strategy!(u8, u16, u32, u64, usize);
}

pub mod arbitrary {
    //! `any::<T>()` — the default strategy for a type.

    use std::marker::PhantomData;

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a default random distribution.
    pub trait Arbitrary: Sized {
        /// Draw one value from the default distribution.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    /// The default strategy for any [`Arbitrary`] type.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    /// Strategy returned by [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! int_arbitrary {
        ($($t:ty),*) => {
            $(impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            })*
        };
    }
    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for char {
        fn arbitrary(rng: &mut TestRng) -> char {
            // Printable ASCII keeps generated keys readable in failures.
            (0x20 + (rng.next_u64() % 0x5f) as u8) as char
        }
    }
}

pub mod collection {
    //! Strategies for collections with a sampled size.

    use std::collections::BTreeSet;
    use std::ops::{Range, RangeInclusive};

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Collection size specification: an exact length or a half-open range,
    /// mirroring proptest's `SizeRange` conversions.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl SizeRange {
        fn sample(&self, rng: &mut TestRng) -> usize {
            rng.usize_in(self.lo, self.hi_exclusive)
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi_exclusive: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange { lo: r.start, hi_exclusive: r.end }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi_exclusive: *r.end() + 1 }
        }
    }

    /// `Vec` strategy with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// Strategy returned by [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// `BTreeSet` strategy with target size drawn from `size`. Because
    /// duplicates are discarded, the sampled set can come out smaller than
    /// the target when the element space is nearly exhausted.
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size: size.into() }
    }

    /// Strategy returned by [`btree_set`].
    #[derive(Debug, Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `BTreeMap` strategy with target size drawn from `size`; like
    /// [`btree_set`], key collisions can shrink the result below target.
    pub fn btree_map<K, V>(key: K, value: V, size: impl Into<SizeRange>) -> BTreeMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
    {
        BTreeMapStrategy { key, value, size: size.into() }
    }

    /// Strategy returned by [`btree_map`].
    #[derive(Debug, Clone)]
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: SizeRange,
    }

    impl<K, V> Strategy for BTreeMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
    {
        type Value = std::collections::BTreeMap<K::Value, V::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let target = self.size.sample(rng);
            let mut map = std::collections::BTreeMap::new();
            let mut attempts = 0usize;
            while map.len() < target && attempts < target * 10 + 100 {
                map.insert(self.key.sample(rng), self.value.sample(rng));
                attempts += 1;
            }
            map
        }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let target = self.size.sample(rng);
            let mut set = BTreeSet::new();
            // Collisions are expected for tiny element domains; cap the
            // attempts so exhausted domains (e.g. bools) still terminate.
            let mut attempts = 0usize;
            while set.len() < target && attempts < target * 10 + 100 {
                set.insert(self.element.sample(rng));
                attempts += 1;
            }
            set
        }
    }
}

pub mod prelude {
    //! One-stop import mirroring `proptest::prelude`.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Shim for `proptest::proptest!`: expands each `fn name(pat in strategy)`
/// item into a `#[test]` that samples its strategies `cases` times.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut rng = $crate::test_runner::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        case,
                    );
                    $(
                        let $pat =
                            $crate::strategy::Strategy::sample(&($strat), &mut rng);
                    )+
                    $body
                }
            }
        )*
    };
}

/// Shim for `prop_assert!`: plain `assert!` (failures panic; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Shim for `prop_assert_eq!`: plain `assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Shim for `prop_assert_ne!`: plain `assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = crate::test_runner::TestRng::for_case("t", 0);
        let mut b = crate::test_runner::TestRng::for_case("t", 0);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::test_runner::TestRng::for_case("t", 1);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn vec_lengths_respect_range(
            v in crate::collection::vec(any::<u8>(), 3..7),
        ) {
            prop_assert!(v.len() >= 3 && v.len() < 7);
        }

        #[test]
        fn btree_set_is_sorted_and_capped(
            s in crate::collection::btree_set(any::<u64>(), 1..20),
            (x, y) in (any::<u8>(), any::<u8>()),
        ) {
            prop_assert!(!s.is_empty() && s.len() < 20);
            let _ = (x, y);
        }
    }
}
