//! Root integration package of the HOPE reproduction workspace.
//!
//! Re-exports the workspace crates so the examples under `examples/` and
//! the cross-crate integration tests under `tests/` can use every
//! component through one dependency. See the `hope` crate for the
//! compressor itself and DESIGN.md for the full system inventory.

pub use hope;
pub use hope_art;
pub use hope_btree;
pub use hope_hot;
pub use hope_surf;
pub use hope_workloads;
