//! Quickstart: build a HOPE compressor from sampled keys, encode new keys
//! order-preservingly, and verify losslessness with the decoder.
//!
//! Run: `cargo run --release --example quickstart`

use hope::prelude::*;

fn main() {
    // 1. Sample keys the way a DBMS would at index-creation time.
    let sample: Vec<Vec<u8>> = [
        "com.gmail@alice",
        "com.gmail@bob",
        "com.gmail@carol",
        "com.yahoo@dave",
        "com.yahoo@erin",
        "org.acm@frank",
        "net.github@grace",
        "com.gmail@heidi",
        "com.outlook@ivan",
    ]
    .iter()
    .map(|s| s.as_bytes().to_vec())
    .collect();

    // 2. Build a Double-Char compressor (the paper's sweet spot between
    //    compression rate and encoding speed).
    let hope =
        HopeBuilder::new(Scheme::DoubleChar).build_from_sample(sample.clone()).expect("build");
    println!(
        "built {} with {} dictionary entries ({} KB)",
        hope.scheme(),
        hope.dict_entries(),
        hope.dict_memory_bytes() / 1024
    );

    // 3. Encode keys — including keys never seen in the sample. Any HOPE
    //    dictionary encodes arbitrary keys (completeness, §3.1).
    let keys = [
        "com.gmail@aaron",
        "com.gmail@zoe",
        "com.hotmail@newcomer",
        "org.acm@turing",
        "zz.unseen@pattern",
    ];
    let mut encoded: Vec<_> = keys.iter().map(|k| hope.encode(k.as_bytes())).collect();

    for (k, e) in keys.iter().zip(&encoded) {
        println!("{k:24} {:2}B -> {:2}B ({} bits)", k.len(), e.byte_len(), e.bit_len());
    }

    // 4. Order is preserved: sorting encodings sorts the original keys.
    //    Decoding goes through the unified fallible codec surface
    //    (`KeyCodec`): corruption would surface as an error, not a panic.
    encoded.sort();
    let mut scratch = DecodeScratch::new();
    let decoded: Vec<String> = encoded
        .iter()
        .map(|e| {
            let back = hope.decode_to(e.as_bytes(), e.bit_len(), &mut scratch).expect("lossless");
            String::from_utf8(back.to_vec()).expect("utf8")
        })
        .collect();
    println!("\nsorted by encoding: {decoded:?}");
    let mut expect: Vec<String> = keys.iter().map(|s| s.to_string()).collect();
    expect.sort();
    assert_eq!(decoded, expect, "order preservation violated");
    println!("order preserved ✓  lossless ✓");
}
