//! Explore the compression-rate vs encoding-speed trade-off (§3.3) across
//! all six schemes and the three datasets — a miniature of Figure 8 you
//! can point at your own parameters.
//!
//! Run: `cargo run --release --example compression_explorer [keys]`

use hope::{stats, HopeBuilder, Scheme};
use hope_workloads::{generate, sample_keys, Dataset};

fn main() {
    let n: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(30_000);

    for dataset in Dataset::ALL {
        let keys = generate(dataset, n, 99);
        let sample = sample_keys(&keys, ((5000.0 / n as f64) * 100.0).clamp(1.0, 100.0), 1);
        let avg = keys.iter().map(|k| k.len()).sum::<usize>() as f64 / keys.len() as f64;
        println!("\n== {dataset} ({n} keys, avg {avg:.1} B) ==");
        println!(
            "{:14} {:>8} {:>9} {:>12} {:>10} {:>10}",
            "scheme", "CPR", "bits/key", "ns/char", "dict", "dict_KB"
        );
        for scheme in Scheme::ALL {
            let hope = HopeBuilder::new(scheme)
                .dictionary_entries(1 << 14)
                .build_from_sample(sample.iter().cloned())
                .expect("build");
            let st = stats::measure(&hope, &keys);
            println!(
                "{:14} {:>8.3} {:>9.1} {:>12.2} {:>10} {:>10.1}",
                scheme.name(),
                st.cpr(),
                st.enc_bits as f64 / keys.len() as f64,
                st.latency_ns_per_char(),
                hope.dict_entries(),
                hope.dict_memory_bytes() as f64 / 1024.0,
            );
        }
    }
}
