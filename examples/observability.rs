//! Watch a store watch itself: the telemetry layer end to end.
//!
//! Builds a sharded `hope_store`, drifts the write traffic until a
//! dictionary hot-swap fires, then reads the whole story back out of the
//! store's own telemetry — per-shard CPR-drift gauges, the codec's
//! fast-path/fallback split, the swap events in the lifecycle ring, and
//! a sampled-tracing histogram of where get latency actually goes —
//! finishing with the Prometheus rendering a scrape endpoint would
//! serve.
//!
//! Run with: `cargo run --release --example observability`

use hope_store::prelude::*;
use hope_workloads::generate_email_split;

fn main() {
    let (email_a, email_b) = generate_email_split(60_000, 42);
    let load: Vec<(Vec<u8>, u64)> =
        email_a.iter().take(15_000).enumerate().map(|(i, k)| (k.clone(), i as u64)).collect();
    let cfg = StoreConfig { min_observed_bytes: 4 * 1024, ..StoreConfig::default() };
    let store = HopeStore::build(cfg, load.clone()).expect("store build");

    // Sampled tracing by hand: every 64th get runs the span-timed path.
    // (Servers set `ServingConfig::trace_sample_every` and get this per
    // worker, into the same `serving.trace.*` histograms.)
    let registry = store.telemetry_handle();
    let probe_spans = registry.registry().histo("serving.trace.probe");
    let mut sampler = TraceSampler::new(64);
    for (key, value) in load.iter().cycle().take(50_000) {
        if sampler.tick() {
            let (v, spans) = store.get_traced(key).expect("valid key");
            assert_eq!(v, Some(*value));
            probe_spans.record(spans.probe_ns);
        } else {
            assert_eq!(store.get(key).expect("valid key"), Some(*value));
        }
    }

    // Drift the insert population until maintenance wants a rebuild.
    for (i, k) in email_b.iter().take(20_000).enumerate() {
        store.insert(k.clone(), i as u64).expect("valid key");
    }
    let (swaps, errors) = store.maintain();
    assert!(errors.is_empty());
    println!("maintenance swapped {} shard(s)\n", swaps.len());

    // The snapshot: every number the store kept about itself.
    let snap = store.telemetry();
    println!("== gauges (drift, per shard) ==");
    for shard in 0..cfg.shards {
        println!(
            "  shard {shard}: epoch {}, {} keys, baseline CPR {}m, observed {}m, drift {}m",
            snap.gauge(&format!("store.shard.{shard}.epoch")).unwrap_or(0),
            snap.gauge(&format!("store.shard.{shard}.keys")).unwrap_or(0),
            snap.gauge(&format!("store.shard.{shard}.baseline_cpr_milli")).unwrap_or(0),
            snap.gauge(&format!("store.shard.{shard}.observed_cpr_milli")).unwrap_or(0),
            snap.gauge(&format!("store.shard.{shard}.drift_milli")).unwrap_or(0),
        );
    }

    println!("\n== codec path split ==");
    for name in ["fast_encode_keys", "generic_encode_keys", "automaton_fallback_takes"] {
        println!(
            "  store.codec.{name} = {}",
            snap.gauge(&format!("store.codec.{name}")).unwrap_or(0)
        );
    }

    println!(
        "\n== lifecycle events ({} recorded, {} dropped) ==",
        snap.events.len(),
        snap.dropped_events
    );
    for ev in &snap.events {
        println!(
            "  [{}] {} shard {} epoch {}->{} ({} keys, {} replayed, {:.1} ms)",
            ev.seq,
            ev.kind.name(),
            ev.shard,
            ev.prev_epoch,
            ev.epoch,
            ev.keys,
            ev.replayed,
            ev.duration_ns as f64 / 1e6,
        );
    }
    assert_eq!(snap.events_of(EventKind::SwapEnd).count(), swaps.len());

    if let Some(h) = snap.histogram("serving.trace.probe") {
        println!(
            "\n== sampled get probe spans == {} samples, p50 {} ns, p99 {} ns, max {} ns",
            h.count, h.p50_ns, h.p99_ns, h.max_ns
        );
    }

    println!("\n== prometheus (first lines of what /metrics would serve) ==");
    for line in snap.to_prometheus().lines().take(8) {
        println!("  {line}");
    }
}
