//! The paper's motivating scenario (§1): an in-memory OLTP secondary index
//! over email keys, where DRAM is scarce. Compare a plain B+tree over raw
//! keys with HOPE-compressed variants: memory shrinks while point and
//! range queries stay correct (and usually get faster at scale).
//!
//! Run: `cargo run --release --example email_index`

use hope::{HopeBuilder, Scheme};
use hope_btree::BPlusTree;
use hope_workloads::{generate, sample_keys, Dataset};

fn main() {
    let n = 100_000;
    let keys = generate(Dataset::Email, n, 7);
    let sample = sample_keys(&keys, 5.0, 1);
    println!("indexing {n} email keys\n");
    println!("{:22} {:>10} {:>12} {:>12}", "configuration", "mem_MB", "point_us", "range_us");

    run("B+tree / raw keys", None, &keys);
    for scheme in [Scheme::SingleChar, Scheme::DoubleChar, Scheme::ThreeGrams] {
        let hope = HopeBuilder::new(scheme)
            .dictionary_entries(1 << 16)
            .build_from_sample(sample.iter().cloned())
            .expect("build");
        run(&format!("B+tree / {}", scheme.name()), Some(hope), &keys);
    }
}

fn run(label: &str, hope: Option<hope::Hope>, keys: &[Vec<u8>]) {
    let enc = |k: &[u8]| -> Vec<u8> {
        match &hope {
            Some(h) => h.encode(k).into_bytes(),
            None => k.to_vec(),
        }
    };
    let mut tree = BPlusTree::plain();
    for (i, k) in keys.iter().enumerate() {
        tree.insert(&enc(k), i as u64);
    }

    // Point queries: every 7th key.
    let t = std::time::Instant::now();
    let mut hits = 0usize;
    let probes: Vec<&Vec<u8>> = keys.iter().step_by(7).collect();
    for (j, k) in probes.iter().enumerate() {
        hits += (tree.get(&enc(k)) == Some((j * 7) as u64)) as usize;
    }
    assert_eq!(hits, probes.len(), "all lookups must hit");
    let point_us = t.elapsed().as_secs_f64() * 1e6 / probes.len() as f64;

    // Short range scans (10 keys) from every 31st key.
    let t = std::time::Instant::now();
    let starts: Vec<&Vec<u8>> = keys.iter().step_by(31).collect();
    let mut total = 0usize;
    for k in &starts {
        total += tree.scan(&enc(k), 10).len();
    }
    assert!(total >= starts.len());
    let range_us = t.elapsed().as_secs_f64() * 1e6 / starts.len() as f64;

    let mem = tree.memory_bytes() + hope.as_ref().map_or(0, |h| h.dict_memory_bytes());
    println!("{:22} {:>10.2} {:>12.3} {:>12.3}", label, mem as f64 / 1048576.0, point_us, range_us);
}
