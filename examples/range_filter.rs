//! SuRF + HOPE as an in-memory range filter in front of slow storage
//! (§1's "minimize the number of I/Os" scenario): the filter answers
//! "might the store contain a key in [low, high]?" from a few MB of DRAM,
//! and compression buys either less memory or a lower false-positive rate.
//!
//! Run: `cargo run --release --example range_filter`

use hope::{HopeBuilder, Scheme};
use hope_surf::{SuffixKind, Surf};
use hope_workloads::{generate, sample_keys, Dataset};

fn main() {
    let n = 50_000;
    let all = generate(Dataset::Url, 2 * n, 3);
    let (stored, absent) = all.split_at(n);
    let sample = sample_keys(stored, 10.0, 5);

    println!("{} URLs stored, probing with {} absent URLs\n", stored.len(), absent.len());
    println!("{:26} {:>9} {:>10} {:>10}", "filter", "mem_KB", "FPR_%", "height");

    // Raw-key filter.
    report("SuRF-Real8 / raw", None, stored, absent);

    // HOPE-compressed filters.
    for (scheme, dict) in [(Scheme::DoubleChar, 65792), (Scheme::FourGrams, 1 << 16)] {
        let hope = HopeBuilder::new(scheme)
            .dictionary_entries(dict)
            .build_from_sample(sample.iter().cloned())
            .expect("build");
        report(&format!("SuRF-Real8 / {}", scheme.name()), Some(hope), stored, absent);
    }
}

fn report(label: &str, hope: Option<hope::Hope>, stored: &[Vec<u8>], absent: &[Vec<u8>]) {
    let enc = |k: &[u8]| -> Vec<u8> {
        match &hope {
            Some(h) => h.encode(k).into_bytes(),
            None => k.to_vec(),
        }
    };
    let mut sorted: Vec<Vec<u8>> = stored.iter().map(|k| enc(k)).collect();
    sorted.sort_unstable();
    sorted.dedup();
    let surf = Surf::build(&sorted, SuffixKind::Real);

    // Every stored key must pass (no false negatives — ever).
    for k in stored {
        assert!(surf.contains(&enc(k)), "false negative");
    }
    // Absent keys measure the false-positive rate.
    let fp = absent.iter().filter(|k| surf.contains(&enc(k))).count();

    let mem = surf.memory_bytes() + hope.as_ref().map_or(0, |h| h.dict_memory_bytes());
    println!(
        "{:26} {:>9.1} {:>10.2} {:>10.2}",
        label,
        mem as f64 / 1024.0,
        fp as f64 / absent.len() as f64 * 100.0,
        surf.avg_height()
    );
}
