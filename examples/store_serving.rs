//! Serve a compressed key-value store that retrains its own dictionaries.
//!
//! Builds a sharded `hope_store` over email keys, serves point and range
//! queries, then shifts the write traffic to a different key population —
//! the kind of drift that silently erodes a static dictionary's
//! compression (Appendix C). A background maintenance thread notices the
//! degraded compression rate and hot-swaps fresh dictionaries in, while
//! the foreground keeps querying without a wrong answer or a blocked read.
//!
//! Run with: `cargo run --release --example store_serving`

use std::sync::Arc;
use std::time::Duration;

use hope_store::prelude::*;
use hope_workloads::generate_email_split;

fn main() {
    // Two email populations: A (gmail/yahoo) to load, B (the rest) to
    // drift toward.
    let (email_a, email_b) = generate_email_split(120_000, 42);
    let load: Vec<(Vec<u8>, u64)> =
        email_a.iter().take(20_000).enumerate().map(|(i, k)| (k.clone(), i as u64)).collect();

    let cfg = StoreConfig { min_observed_bytes: 16 * 1024, ..StoreConfig::default() };
    let store = Arc::new(HopeStore::build(cfg, load.clone()).expect("store build"));
    println!("loaded {} keys into {} shards, epochs {:?}", store.len(), cfg.shards, store.epochs());
    for s in store.stats() {
        println!(
            "  shard {}: {} keys, baseline CPR {:.2}, dict {} KiB",
            s.shard,
            s.keys,
            s.baseline_cpr,
            s.dict_bytes / 1024
        );
    }

    // Serve some reads: a point get, then a lazy cursor over a window.
    let (probe_key, probe_val) = &load[1234];
    assert_eq!(store.get(probe_key).expect("valid key"), Some(*probe_val));
    let mut window = store
        .cursor(probe_key, &[probe_key.as_slice(), b"\xff"].concat(), 5)
        .expect("valid bounds");
    let mut hits = 0;
    while let Some((_key, _value)) = window.next_hit() {
        hits += 1;
    }
    println!("\npoint get ok; cursor from {:?} -> {hits} hits", String::from_utf8_lossy(probe_key));

    // Background maintenance + drifting writes.
    let maintainer = Maintainer::spawn(Arc::clone(&store), Duration::from_millis(2));
    for (i, k) in email_b.iter().take(30_000).enumerate() {
        store.insert(k.clone(), i as u64).expect("valid key");
        if i % 5_000 == 4_999 {
            // Reads stay correct mid-drift, mid-swap.
            assert_eq!(store.get(probe_key).expect("valid key"), Some(*probe_val));
            std::thread::sleep(Duration::from_millis(5)); // let maintenance observe
        }
    }
    let log = maintainer.stop();
    assert!(log.errors.is_empty(), "rebuild failures: {:?}", log.errors);

    println!(
        "\nafter drift: {} dictionary hot-swaps, epochs {:?}",
        log.swaps.len(),
        store.epochs()
    );
    for r in &log.swaps {
        println!(
            "  shard {}: epoch {} -> {}, observed CPR {:.2} vs baseline {:.2}, {} keys re-encoded",
            r.shard,
            r.old_epoch,
            r.new_epoch,
            r.observed_cpr.unwrap_or(0.0),
            r.old_baseline_cpr,
            r.live_keys
        );
    }
    assert_eq!(
        store.get(probe_key).expect("valid key"),
        Some(*probe_val),
        "reads survived every swap"
    );
    assert_eq!(store.len(), 50_000);
    println!("\nall {} keys still served correctly — no reader ever blocked", store.len());
}
